// Tests for the model-guided autotuning subsystem: plan serialisation,
// plan application, model-prune ordering, and the determinism contract the
// tune-smoke CI job relies on (identical stores -> bit-identical plans,
// second tune -> pure cache hits).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "machine/machine_model.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "tuning/plan.hpp"
#include "tuning/search.hpp"

namespace {

tl::ProblemConfig tiny_problem(int mesh, int steps) {
  return results::bench_problem(mesh, steps);
}

tuning::TunedPlan sample_plan() {
  tuning::TunedPlan plan;
  plan.deck = "bench-24";
  plan.deck_hash = "0123456789abcdef";
  plan.mesh_x = 24;
  plan.mesh_y = 24;
  plan.steps = 2;
  plan.budget = 3;
  plan.winner.variant = "manual-omp";
  plan.winner.threads = 4;
  plan.winner.tile_rows = 16;
  plan.winner.fused = false;
  plan.winner.solver = "ppcg";
  plan.winner.precon = "jac_diag";
  plan.winner_median_s = 0.125;
  plan.incumbent_median_s = 0.25;
  plan.winner_key = "deadbeef00000000";
  plan.calibrated = true;
  plan.scored_bw_gbs = 37.5;
  plan.scored_launch_overhead_us = 3.25;
  plan.bw_source = "fit";
  plan.launch_source = "env";
  plan.device_calibrated = true;
  plan.scored_device_bw_gbs = 640.0;
  plan.scored_device_launch_us = 9.5;
  plan.scored_pcie_gbs = 11.0;
  plan.device_bw_source = "fit";
  plan.device_launch_source = "env";
  plan.pcie_source = "fallback";
  plan.has_device_choice = true;
  plan.host_choice = plan.winner;
  plan.device_choice.variant = "manual-cuda";
  plan.device_choice.solver = "ppcg";
  plan.device_choice.precon = "jac_diag";
  plan.device_choice.fused = false;
  plan.crossover_mesh = 1000;
  plan.device_table.push_back({250, 0.05, 0.2, false});
  plan.device_table.push_back({1000, 1.1, 0.9, true});
  tuning::FrontierEntry e;
  e.point = plan.winner;
  e.model_seconds = 0.1;
  e.converged = true;
  e.median_s = 0.125;
  e.min_s = 0.12;
  e.store_key = plan.winner_key;
  e.effective_s = 0.125;
  plan.frontier.push_back(e);
  tuning::FrontierEntry d;
  d.point = plan.device_choice;
  d.model_seconds = 0.2;
  d.converged = true;
  d.median_s = 3.0;  // emulated wall — never ranked on
  d.min_s = 2.9;
  d.store_key = "feedface00000000";
  d.projected_device_s = 0.2;
  d.effective_s = 0.2;
  plan.frontier.push_back(d);
  return plan;
}

TEST(TunedPlan, JsonRoundTripPreservesEveryField) {
  const tuning::TunedPlan plan = sample_plan();
  const tuning::TunedPlan back =
      tuning::plan_from_json(results::Json::parse(
          tuning::plan_to_json(plan).dump(2)));
  EXPECT_EQ(back.schema_version, tuning::kPlanSchemaVersion);
  EXPECT_EQ(back.deck, plan.deck);
  EXPECT_EQ(back.deck_hash, plan.deck_hash);
  EXPECT_EQ(back.mesh_x, plan.mesh_x);
  EXPECT_EQ(back.steps, plan.steps);
  EXPECT_EQ(back.budget, plan.budget);
  EXPECT_TRUE(back.winner == plan.winner) << back.winner.id();
  EXPECT_DOUBLE_EQ(back.winner_median_s, plan.winner_median_s);
  EXPECT_DOUBLE_EQ(back.incumbent_median_s, plan.incumbent_median_s);
  EXPECT_EQ(back.winner_key, plan.winner_key);
  EXPECT_TRUE(back.calibrated);
  EXPECT_DOUBLE_EQ(back.scored_bw_gbs, plan.scored_bw_gbs);
  EXPECT_DOUBLE_EQ(back.scored_launch_overhead_us,
                   plan.scored_launch_overhead_us);
  EXPECT_EQ(back.bw_source, "fit");
  EXPECT_EQ(back.launch_source, "env");
  EXPECT_TRUE(back.device_calibrated);
  EXPECT_DOUBLE_EQ(back.scored_device_bw_gbs, 640.0);
  EXPECT_DOUBLE_EQ(back.scored_device_launch_us, 9.5);
  EXPECT_DOUBLE_EQ(back.scored_pcie_gbs, 11.0);
  EXPECT_EQ(back.device_bw_source, "fit");
  EXPECT_EQ(back.device_launch_source, "env");
  EXPECT_EQ(back.pcie_source, "fallback");
  EXPECT_TRUE(back.has_device_choice);
  EXPECT_TRUE(back.host_choice == plan.host_choice);
  EXPECT_TRUE(back.device_choice == plan.device_choice);
  EXPECT_EQ(back.crossover_mesh, 1000);
  ASSERT_EQ(back.device_table.size(), 2u);
  EXPECT_TRUE(back.device_table[0] == plan.device_table[0]);
  EXPECT_TRUE(back.device_table[1] == plan.device_table[1]);
  ASSERT_EQ(back.frontier.size(), 2u);
  EXPECT_TRUE(back.frontier[0].point == plan.frontier[0].point);
  EXPECT_DOUBLE_EQ(back.frontier[0].model_seconds, 0.1);
  EXPECT_EQ(back.frontier[0].store_key, plan.winner_key);
  EXPECT_DOUBLE_EQ(back.frontier[1].projected_device_s, 0.2);
  EXPECT_DOUBLE_EQ(back.frontier[1].effective_s, 0.2);

  // Serialisation is a fixed point (the bit-determinism contract rests on
  // this): one more lap changes nothing.
  EXPECT_EQ(tuning::plan_to_json(back).dump(2),
            tuning::plan_to_json(plan).dump(2));
}

TEST(TunedPlan, UnknownKeysAreTolerated) {
  // A plan written by a future version with extra fields must still load:
  // top-level, winner-level and frontier-level unknowns are all ignored.
  results::Json doc = tuning::plan_to_json(sample_plan());
  doc.set("future_top_level_field", results::Json("ignore me"));
  results::Json fancy_winner = *doc.get("winner");
  fancy_winner.set("gpu_clock_mhz", results::Json(1480));
  doc.set("winner", std::move(fancy_winner));
  const tuning::TunedPlan back = tuning::plan_from_json(doc);
  EXPECT_EQ(back.deck, "bench-24");
  EXPECT_EQ(back.winner.variant, "manual-omp");
  EXPECT_EQ(back.winner.threads, 4);
}

TEST(TunedPlan, SchemaVersionMismatchThrows) {
  results::Json doc = tuning::plan_to_json(sample_plan());
  doc.set("schema_version", results::Json(999));
  EXPECT_THROW(tuning::plan_from_json(doc), tl::ConfigError);
}

TEST(TunedPlan, ApplyPlanDrivesProblemAndOptions) {
  const tuning::TunedPlan plan = sample_plan();
  tl::ProblemConfig problem = tiny_problem(24, 2);
  tea::RunOptions options;
  const std::string variant = tuning::apply_plan(plan, &problem, &options);
  EXPECT_EQ(variant, "manual-omp");
  EXPECT_EQ(problem.solver, tl::SolverKind::kPpcg);
  EXPECT_EQ(problem.preconditioner, tl::PreconKind::kJacDiag);
  EXPECT_EQ(options.threads, 4);
  EXPECT_EQ(options.tile.tile_rows, 16);
  EXPECT_FALSE(options.fuse_operator_dot);
}

TEST(TunedPlan, ApplyPlanForMeshPicksTheTableSide) {
  const tuning::TunedPlan plan = sample_plan();
  // Below every rung: the smallest rung's side applies (host at 250).
  {
    tl::ProblemConfig problem = tiny_problem(24, 2);
    tea::RunOptions options;
    EXPECT_EQ(tuning::apply_plan_for_mesh(plan, &problem, &options),
              "manual-omp");
  }
  // On or past the device rung: the device side applies, with the device
  // choice's solver configuration driven onto the problem.
  {
    tl::ProblemConfig problem = tiny_problem(24, 2);
    problem.x_cells = 2000;
    problem.y_cells = 2000;
    tea::RunOptions options;
    EXPECT_EQ(tuning::apply_plan_for_mesh(plan, &problem, &options),
              "manual-cuda");
    EXPECT_EQ(problem.solver, tl::SolverKind::kPpcg);
    EXPECT_FALSE(options.fuse_operator_dot);
  }
  // No table: identical to the legacy apply_plan (the winner runs).
  {
    tuning::TunedPlan legacy = plan;
    legacy.has_device_choice = false;
    legacy.device_table.clear();
    tl::ProblemConfig problem = tiny_problem(24, 2);
    problem.x_cells = 4000;
    tea::RunOptions options;
    EXPECT_EQ(tuning::apply_plan_for_mesh(legacy, &problem, &options),
              legacy.winner.variant);
  }
}

TEST(Search, CandidateSpaceStartsWithTheIncumbent) {
  tl::ProblemConfig problem = tiny_problem(24, 2);
  problem.solver = tl::SolverKind::kPpcg;
  problem.preconditioner = tl::PreconKind::kJacDiag;
  const auto space = tuning::enumerate_candidates(problem, 4);
  ASSERT_FALSE(space.empty());
  const tuning::ExecutionPoint& incumbent = space.front();
  EXPECT_EQ(incumbent.variant, "manual-omp");
  EXPECT_EQ(incumbent.threads, 0);
  EXPECT_EQ(incumbent.solver, "ppcg");
  EXPECT_EQ(incumbent.precon, "jac_diag");
  // The space covers every execution dimension the issue names.
  bool has_unfused = false, has_tiled = false, has_mpi = false,
       has_kokkos = false, has_raja = false, has_acc = false;
  bool has_cuda = false, has_kokkos_cuda = false, has_raja_cuda = false,
       has_ops_cuda = false, has_ops_acc = false, has_acc_gpu = false;
  for (const tuning::ExecutionPoint& p : space) {
    has_unfused |= !p.fused;
    has_tiled |= p.variant == "ops-tiled" && p.tile_rows > 0;
    has_mpi |= p.variant == "manual-mpi";
    has_kokkos |= p.variant == "kokkos-omp";
    has_raja |= p.variant == "raja-omp";
    has_acc |= p.variant == "manual-acc-cpu";
    has_cuda |= p.variant == "manual-cuda";
    has_kokkos_cuda |= p.variant == "kokkos-cuda";
    has_raja_cuda |= p.variant == "raja-cuda";
    has_ops_cuda |= p.variant == "ops-cuda";
    has_ops_acc |= p.variant == "ops-acc";
    has_acc_gpu |= p.variant == "manual-acc-gpu";
  }
  EXPECT_TRUE(has_unfused);
  EXPECT_TRUE(has_tiled);
  EXPECT_TRUE(has_mpi);
  EXPECT_TRUE(has_kokkos);
  EXPECT_TRUE(has_raja);
  EXPECT_TRUE(has_acc);
  EXPECT_TRUE(has_cuda);
  EXPECT_TRUE(has_kokkos_cuda);
  EXPECT_TRUE(has_raja_cuda);
  EXPECT_TRUE(has_ops_cuda);
  EXPECT_TRUE(has_ops_acc);
  EXPECT_TRUE(has_acc_gpu);
  // No duplicates (ids are the identity).
  for (std::size_t i = 0; i < space.size(); ++i) {
    for (std::size_t j = i + 1; j < space.size(); ++j) {
      EXPECT_NE(space[i].id(), space[j].id());
    }
  }
}

TEST(Search, ModelSecondsRespondsToTheModelConstants) {
  const tl::ProblemConfig problem = tiny_problem(48, 2);
  tuning::ExecutionPoint p;  // manual-omp defaults
  machine::MachineModel host = machine::host_machine();
  host.peak_bw_gbs = 10.0;
  host.launch_overhead_us = 5.0;
  const double slow_bw = tuning::model_seconds(problem, p, host);
  host.peak_bw_gbs = 100.0;
  const double fast_bw = tuning::model_seconds(problem, p, host);
  EXPECT_LT(fast_bw, slow_bw);  // 10x bandwidth can only help
  host.launch_overhead_us = 500.0;
  const double slow_launch = tuning::model_seconds(problem, p, host);
  EXPECT_GT(slow_launch, fast_bw);  // 100x launch cost can only hurt
}

// The prune contract: candidates are ranked by modeled seconds with the id
// as the only tie-break — a strictly slower modeled candidate never
// outranks a faster one.
TEST(Search, ModelPruneIsMonotone) {
  results::ResultStore store;
  tuning::TuneOptions options;
  options.deck_label = "prune-test";
  options.budget = 2;
  options.samples = 1;
  const tuning::TuneOutcome outcome =
      tuning::tune(store, tiny_problem(16, 1), options);
  ASSERT_GT(outcome.considered.size(), 10u);
  for (std::size_t i = 1; i < outcome.considered.size(); ++i) {
    const tuning::ScoredCandidate& prev = outcome.considered[i - 1];
    const tuning::ScoredCandidate& cur = outcome.considered[i];
    EXPECT_LE(prev.model_seconds, cur.model_seconds)
        << prev.point.id() << " vs " << cur.point.id();
    if (prev.model_seconds == cur.model_seconds) {
      EXPECT_LT(prev.point.id(), cur.point.id());
    }
  }
  // Everything measured was either in the top-budget prefix, the incumbent
  // (never pruned), or the device anchor — the best-modeled simgpu
  // candidate, force-added so the device-choice table always has a
  // measured device lead to scale from.
  ASSERT_GE(outcome.plan.frontier.size(), 2u);
  const tuning::ExecutionPoint incumbent;  // manual-omp/t0/fused/cg+none
  int gpu_entries = 0;
  for (const tuning::FrontierEntry& e : outcome.plan.frontier) {
    bool in_prefix = false;
    for (int i = 0; i < options.budget; ++i) {
      if (outcome.considered[static_cast<std::size_t>(i)].point == e.point) {
        in_prefix = true;
      }
    }
    const bool gpu = tea::backend_is_gpu(e.point.variant);
    if (gpu) ++gpu_entries;
    EXPECT_TRUE(in_prefix || e.point == incumbent || gpu) << e.point.id();
  }
  // Exactly one device anchor rides along when no device candidate makes
  // the model cut naturally (at mesh 16 none does).
  EXPECT_EQ(gpu_entries, 1);
}

TEST(Search, TuneIsBitDeterministicAndCachesPerfectly) {
  results::ResultStore store;
  const tl::ProblemConfig problem = tiny_problem(24, 2);
  tuning::TuneOptions options;
  options.deck_label = "determinism-test";
  options.budget = 4;
  options.samples = 1;

  const tuning::TuneOutcome first = tuning::tune(store, problem, options);
  EXPECT_GT(first.measured, 0);
  EXPECT_EQ(first.cached, 0);

  // Second tune against the store the first one populated: every cell is a
  // cache hit and the plan JSON is bit-identical.
  const tuning::TuneOutcome second = tuning::tune(store, problem, options);
  EXPECT_EQ(second.measured, 0);
  EXPECT_EQ(second.cached, static_cast<int>(second.plan.frontier.size()));
  EXPECT_EQ(tuning::plan_to_json(first.plan).dump(2),
            tuning::plan_to_json(second.plan).dump(2));

  // The winner can never lose to the incumbent: the incumbent is always in
  // the measured frontier and the winner is the fastest converged entry
  // (both in effective seconds — measured wall for host entries, device
  // projection for simgpu entries).
  EXPECT_GT(second.plan.incumbent_median_s, 0.0);
  EXPECT_LE(second.plan.winner_median_s, second.plan.incumbent_median_s);

  // The device anchor measured, so the plan carries a device-choice table:
  // one converged host lead, one converged device lead, and a rung ladder
  // whose crossover field matches its first device-side rung.
  EXPECT_TRUE(second.plan.has_device_choice);
  ASSERT_FALSE(second.plan.device_table.empty());
  EXPECT_FALSE(tea::backend_is_gpu(second.plan.host_choice.variant));
  EXPECT_TRUE(tea::backend_is_gpu(second.plan.device_choice.variant));
  int first_device_rung = 0;
  for (const tuning::DeviceChoice& d : second.plan.device_table) {
    EXPECT_GT(d.host_s, 0.0);
    EXPECT_GT(d.device_s, 0.0);
    if (d.use_device && first_device_rung == 0) first_device_rung = d.mesh;
  }
  EXPECT_EQ(second.plan.crossover_mesh, first_device_rung);

  // Reset the override the tune left installed (the feedback loop is
  // process-global by design).
  machine::set_host_overrides({});
}

TEST(Search, TuneRowsAreExcludedFromTheCalibrationFit) {
  // A store holding nothing but tune rows must behave like an empty store
  // for calibration purposes: the fit falls back to the fixed constants, so
  // re-tuning cannot feed its own measurements back into its own scores.
  results::ResultStore store;
  const tl::ProblemConfig problem = tiny_problem(16, 1);
  tuning::TuneOptions options;
  options.deck_label = "self-feed-test";
  options.budget = 2;
  options.samples = 1;
  const tuning::TuneOutcome first = tuning::tune(store, problem, options);
  EXPECT_FALSE(first.fit.ok);
  EXPECT_FALSE(first.plan.calibrated);
  const tuning::TuneOutcome second = tuning::tune(store, problem, options);
  EXPECT_FALSE(second.fit.ok) << "tune:* rows leaked into the calibration";
  EXPECT_DOUBLE_EQ(second.plan.scored_bw_gbs, first.plan.scored_bw_gbs);
  EXPECT_EQ(second.plan.bw_source, "fallback");
  machine::set_host_overrides({});
}

}  // namespace
