// Tests for the Pennycook metric, the Table III report builder and the
// embedded paper reference data.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ppmetric/paper_data.hpp"
#include "ppmetric/pennycook.hpp"
#include "ppmetric/report.hpp"

namespace {

using ppm::pennycook;

std::vector<std::optional<double>> effs(std::initializer_list<double> vs) {
  std::vector<std::optional<double>> out;
  for (const double v : vs) out.emplace_back(v);
  return out;
}

TEST(Pennycook, EqualEfficienciesPassThrough) {
  const auto e = effs({0.8, 0.8, 0.8});
  EXPECT_NEAR(pennycook(e), 0.8, 1e-12);
}

TEST(Pennycook, HarmonicMeanLiesBetweenMinAndMax) {
  const auto e = effs({0.5, 1.0});
  const double p = pennycook(e);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 1.0);
  EXPECT_NEAR(p, 2.0 / (1.0 / 0.5 + 1.0 / 1.0), 1e-12);
}

TEST(Pennycook, DominatedBySmallValues) {
  // One bad platform drags the harmonic mean towards it — the property that
  // makes Kokkos' 23.6% KNL bandwidth collapse its CPU score in the paper.
  const auto good = effs({0.9, 0.9});
  const auto dragged = effs({0.9, 0.1});
  EXPECT_LT(pennycook(dragged), 0.2);
  EXPECT_GT(pennycook(good), 0.89);
}

TEST(Pennycook, ZeroWhenUnsupported) {
  std::vector<std::optional<double>> e{0.9, std::nullopt, 0.8};
  EXPECT_DOUBLE_EQ(pennycook(e), 0.0);
  std::vector<std::optional<double>> z{0.9, 0.0};
  EXPECT_DOUBLE_EQ(pennycook(z), 0.0);
}

TEST(Pennycook, OrderInvariant) {
  const auto a = effs({0.3, 0.6, 0.9});
  const auto b = effs({0.9, 0.3, 0.6});
  EXPECT_DOUBLE_EQ(pennycook(a), pennycook(b));
}

TEST(Pennycook, SinglePlatformIsIdentity) {
  const auto e = effs({0.42});
  EXPECT_DOUBLE_EQ(pennycook(e), 0.42);
}

TEST(Pennycook, EmptySetThrows) {
  std::vector<std::optional<double>> e;
  EXPECT_THROW(pennycook(e), tl::Error);
}

TEST(Efficiencies, Helpers) {
  EXPECT_DOUBLE_EQ(ppm::application_efficiency(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(ppm::application_efficiency(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ppm::architecture_efficiency(60.0, 120.0), 0.5);
  EXPECT_DOUBLE_EQ(ppm::architecture_efficiency(60.0, 0.0), 0.0);
}

// --- table builder ----------------------------------------------------------------

std::vector<ppm::VariantResult> synthetic_results() {
  // Two frameworks on two CPUs + one GPU; framework "b" unsupported on the GPU.
  return {
      {"a-omp", "cpu1", 10.0, 80.0, 1.0, 100.0, 1000.0},
      {"a-mpi", "cpu1", 8.0, 90.0, 1.2, 100.0, 1000.0},
      {"a-omp", "cpu2", 20.0, 50.0, 0.5, 200.0, 2000.0},
      {"a-cuda", "gpu", 4.0, 300.0, 5.0, 500.0, 5000.0},
      {"b-omp", "cpu1", 16.0, 40.0, 0.9, 100.0, 1000.0},
      {"b-omp", "cpu2", 10.0, 120.0, 1.0, 200.0, 2000.0},
  };
}

TEST(Table3, BestVariantRepresentsFramework) {
  const auto rows = ppm::build_table3(synthetic_results(), {"cpu1", "cpu2"},
                                      {"gpu"});
  ASSERT_EQ(rows.size(), 2u);
  const auto& a = rows[0];
  EXPECT_EQ(a.framework, "a");
  // cpu1: best overall time 8.0 (a-mpi); a's best is also 8.0 -> app eff 1.
  EXPECT_DOUBLE_EQ(a.per_machine.at("cpu1").app, 1.0);
  // arch bw: max(80, 90)/100.
  EXPECT_DOUBLE_EQ(a.per_machine.at("cpu1").arch_bw, 0.9);
  // cpu2: best overall 10.0 (b-omp); a took 20 -> 0.5.
  EXPECT_DOUBLE_EQ(a.per_machine.at("cpu2").app, 0.5);
}

TEST(Table3, UnsupportedMachineZeroesMetric) {
  const auto rows = ppm::build_table3(synthetic_results(), {"cpu1", "cpu2"},
                                      {"gpu"});
  const auto& b = rows[1];
  EXPECT_EQ(b.framework, "b");
  EXPECT_FALSE(b.per_machine.at("gpu").supported);
  EXPECT_GT(b.p_cpu_app, 0.0);
  EXPECT_DOUBLE_EQ(b.p_all_app, 0.0);  // paper's "0% if not portable" rule
}

TEST(Table3, MetricsMatchHandComputation) {
  const auto rows = ppm::build_table3(synthetic_results(), {"cpu1", "cpu2"},
                                      {"gpu"});
  const auto& a = rows[0];
  const double e1 = 1.0, e2 = 0.5, eg = 1.0;
  EXPECT_NEAR(a.p_cpu_app, 2.0 / (1 / e1 + 1 / e2), 1e-12);
  EXPECT_NEAR(a.p_all_app, 3.0 / (1 / e1 + 1 / e2 + 1 / eg), 1e-12);
}

TEST(Table3, RenderProducesRowPerFramework) {
  const auto rows = ppm::build_table3(synthetic_results(), {"cpu1", "cpu2"},
                                      {"gpu"});
  const tl::Table table = ppm::render_table3(rows, {"cpu1", "cpu2"}, {"gpu"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("-"), std::string::npos);  // unsupported cells dashed
}

// --- paper data -------------------------------------------------------------------

TEST(PaperData, TableThreeTranscription) {
  const auto& rows = ppm::paper::table3();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].framework, "manual");
  // Headline numbers from the abstract: OPS 70.81%, RAJA 76.77%.
  EXPECT_NEAR(rows[1].p_all_app, 0.7081, 1e-9);
  EXPECT_NEAR(rows[3].p_all_app, 0.7677, 1e-9);
  // Manual achieves 100% app efficiency on the Xeon and P100.
  EXPECT_DOUBLE_EQ(rows[0].xeon_app, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].p100_app, 1.0);
}

TEST(PaperData, MetricInternallyConsistent) {
  // Recomputing P from the per-machine efficiencies must reproduce the
  // published P columns (they used the same harmonic mean).
  for (const auto& row : ppm::paper::table3()) {
    const auto p_cpu =
        pennycook(std::vector<std::optional<double>>{row.xeon_app, row.knl_app});
    EXPECT_NEAR(p_cpu, row.p_cpu_app, 2e-3) << row.framework;
    const auto p_all = pennycook(std::vector<std::optional<double>>{
        row.xeon_app, row.knl_app, row.p100_app});
    EXPECT_NEAR(p_all, row.p_all_app, 2e-3) << row.framework;
  }
}

TEST(PaperData, MemoryBoundSignature) {
  // §V-A: compute efficiency barely 5%, bandwidth mostly > 50%.
  for (const auto& row : ppm::paper::table3()) {
    EXPECT_LT(row.xeon_com, 0.06);
    EXPECT_LT(row.knl_com, 0.06);
    EXPECT_LT(row.p100_com, 0.06);
  }
  EXPECT_GT(ppm::paper::table3()[0].knl_bw, 0.5);
}

TEST(PaperData, ShapeClaimsAndGapsPresent) {
  EXPECT_GE(ppm::paper::shape_claims().size(), 10u);
  ASSERT_EQ(ppm::paper::gpu_cpu_gaps().size(), 2u);
  EXPECT_EQ(ppm::paper::gpu_cpu_gaps()[0].mesh, 1000);
  EXPECT_NEAR(ppm::paper::gpu_cpu_gaps()[1].percent, 50.57, 1e-9);
}

}  // namespace
