// Driver-level integration tests: deck-to-result runs, step accounting,
// timing/counter capture and failure reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.hpp"
#include "core/backends/manual_host.hpp"
#include "core/driver.hpp"
#include "core/problem.hpp"
#include "core/registry.hpp"

namespace {

tl::ProblemConfig quick_problem() {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = 24;
  cfg.problem().y_cells = 24;
  cfg.problem().end_step = 3;
  cfg.problem().eps = 1e-11;
  return cfg.problem();
}

TEST(Driver, RunsConfiguredSteps) {
  tea::ManualHostBackend backend("serial", nullptr, nullptr);
  const tea::TeaDriver driver(quick_problem());
  const auto result = driver.run(backend);
  ASSERT_EQ(result.steps.size(), 3u);
  EXPECT_EQ(result.steps[0].step, 1);
  EXPECT_EQ(result.steps[2].step, 3);
  EXPECT_TRUE(result.all_converged());
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_EQ(result.backend_id, "serial");
  long total = 0;
  for (const auto& s : result.steps) total += s.solve.iterations;
  EXPECT_EQ(result.total_iterations, total);
}

TEST(Driver, CountersCoverTimedRegionOnly) {
  tea::ManualHostBackend backend("serial", nullptr, nullptr);
  const tea::TeaDriver driver(quick_problem());
  const auto result = driver.run(backend);
  // Setup painting is excluded; per-iteration traffic dominates.
  EXPECT_GT(result.counters.total_bytes(), 0);
  EXPECT_EQ(result.counters.solver_iterations, result.total_iterations);
  EXPECT_GT(result.counters.halo_exchanges, 0);
}

TEST(Driver, NonConvergenceSurfacesInResult) {
  auto cfg = quick_problem();
  cfg.max_iters = 2;
  cfg.eps = 1e-30;
  tea::ManualHostBackend backend("serial", nullptr, nullptr);
  const tea::TeaDriver driver(cfg);
  const auto result = driver.run(backend);
  EXPECT_FALSE(result.all_converged());
}

TEST(Driver, EmptyResultNotConverged) {
  const tea::RunResult empty;
  EXPECT_FALSE(empty.all_converged());
}

TEST(StateSampler, PaintsStatesInOrder) {
  tl::Config cfg = tl::Config::parse(R"(*tea
state 1 density=1.0 energy=2.0
state 2 density=5.0 energy=6.0 geometry=rectangle xmin=0.0 xmax=5.0 ymin=0.0 ymax=5.0
state 3 density=9.0 energy=1.0 geometry=circle xcentre=2.5 ycentre=2.5 radius=1.0
x_cells=10
y_cells=10
xmin=0.0 xmax=10.0 ymin=0.0 ymax=10.0
*endtea)");
  const tea::StateSampler sampler(cfg.problem());
  // Ambient cell.
  EXPECT_DOUBLE_EQ(sampler.density_at(8, 8), 1.0);
  // Rectangle region (cell centre 1.5, 1.5).
  EXPECT_DOUBLE_EQ(sampler.density_at(1, 1), 5.0);
  // Circle overrides rectangle at its centre (cell centre 2.5, 2.5).
  EXPECT_DOUBLE_EQ(sampler.density_at(2, 2), 9.0);
  EXPECT_DOUBLE_EQ(sampler.energy_at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(sampler.cell_volume(), 1.0);
}

TEST(StateSampler, PointGeometryHitsSingleCell) {
  tl::Config cfg = tl::Config::parse(R"(*tea
state 1 density=1.0 energy=1.0
state 2 density=3.0 energy=3.0 geometry=point xcentre=4.5 ycentre=4.5
x_cells=10
y_cells=10
xmin=0.0 xmax=10.0 ymin=0.0 ymax=10.0
*endtea)");
  const tea::StateSampler sampler(cfg.problem());
  int hits = 0;
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 10; ++i) hits += sampler.density_at(i, j) == 3.0;
  }
  EXPECT_EQ(hits, 1);
  EXPECT_DOUBLE_EQ(sampler.density_at(4, 4), 3.0);
}

TEST(Driver, InitialSummaryMatchesAnalytic) {
  // 10x10 default problem: state 2 strip covers y in [0,2) => 20 cells of
  // density 0.1/energy 25; remaining 80 cells density 100/energy 0.0001.
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().end_step = 1;
  const auto run = tea::run_simulation("serial", cfg.problem());
  const double cell_vol = 1.0;
  const double mass = 20 * 0.1 * cell_vol + 80 * 100.0 * cell_vol;
  const double ie = 20 * 0.1 * 25.0 * cell_vol + 80 * 100.0 * 0.0001 * cell_vol;
  EXPECT_NEAR(run.final_summary.mass, mass, 1e-9 * mass);
  // Internal energy is conserved by the solve (energy moves, sum stays).
  EXPECT_NEAR(run.final_summary.ie, ie, 1e-6 * ie);
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-12);
}

TEST(Driver, DifferentSolversSameAnswer) {
  auto cfg = quick_problem();
  cfg.end_step = 2;
  cfg.solver = tl::SolverKind::kCg;
  const auto cg = tea::run_simulation("serial", cfg);
  cfg.solver = tl::SolverKind::kPpcg;
  const auto ppcg = tea::run_simulation("serial", cfg);
  EXPECT_NEAR(ppcg.final_summary.ie, cg.final_summary.ie,
              1e-6 * std::fabs(cg.final_summary.ie));
}

TEST(Driver, WorkingSetScalesWithMesh) {
  auto small = quick_problem();
  auto large = quick_problem();
  large.x_cells = 48;
  large.y_cells = 48;
  const auto rs = tea::run_simulation("serial", small);
  const auto rl = tea::run_simulation("serial", large);
  EXPECT_GT(rl.working_set_bytes, rs.working_set_bytes * 2);
}

}  // namespace
