// Tests for the extension features: Jacobi-diagonal preconditioning, field
// readback across backends, VTK snapshots, run reports, and the queued
// halo-reflection tiling path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/vtk.hpp"
#include "core/backends/manual_host.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/solvers/solver.hpp"

namespace {

tl::ProblemConfig problem(int n, tl::SolverKind solver = tl::SolverKind::kCg) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = n;
  cfg.problem().y_cells = n;
  cfg.problem().end_step = 1;
  cfg.problem().eps = 1e-12;
  cfg.problem().solver = solver;
  return cfg.problem();
}

// --- preconditioner --------------------------------------------------------------

std::unique_ptr<tea::ManualHostBackend> prepared(const tl::ProblemConfig& cfg) {
  auto b = std::make_unique<tea::ManualHostBackend>("serial", nullptr, nullptr);
  b->setup(cfg);
  const double dt = cfg.initial_timestep;
  b->set_rx_ry(dt / (cfg.dx() * cfg.dx()), dt / (cfg.dy() * cfg.dy()));
  b->compute_coefficients(cfg.coefficient);
  b->init_u_u0();
  return b;
}

TEST(Preconditioner, ConfigParses) {
  const auto cfg = tl::Config::parse(
      "*tea\nstate 1 density=1 energy=1\n"
      "tl_preconditioner_type=jac_diag\n*endtea");
  EXPECT_EQ(cfg.problem().preconditioner, tl::PreconKind::kJacDiag);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "tl_preconditioner_type=ilu\n*endtea"),
               tl::ConfigError);
}

TEST(Preconditioner, KernelDividesByDiagonal) {
  const auto cfg = problem(16);
  auto b = prepared(cfg);
  // Set src = diag by preconditioning a field of ones twice: first check
  // precondition(ones) = 1/diag elementwise against a manual computation.
  b->scale_copy(tea::FieldId::kR, tea::FieldId::kR, 0.0);
  auto r = b->store().view(tea::FieldId::kR);
  for (int j = 0; j < 16; ++j) {
    for (int i = 0; i < 16; ++i) r(i, j) = 1.0;
  }
  b->precondition(tea::FieldId::kZ, tea::FieldId::kR);
  auto z = b->store().view(tea::FieldId::kZ);
  auto kx = b->store().view(tea::FieldId::kKx);
  auto ky = b->store().view(tea::FieldId::kKy);
  const double rx = b->rx(), ry = b->ry();
  for (int j = 0; j < 16; ++j) {
    for (int i = 0; i < 16; ++i) {
      const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                          ry * (ky(i, j + 1) + ky(i, j));
      ASSERT_NEAR(z(i, j), 1.0 / diag, 1e-14);
    }
  }
}

TEST(Preconditioner, ReducesCgIterations) {
  // The default problem has a 1000x density contrast: diagonal scaling must
  // help CG noticeably.
  const auto cfg = problem(48);
  auto plain = prepared(cfg);
  auto precon = prepared(cfg);
  tea::SolveOptions o;
  o.eps = 1e-12;
  const auto stats_plain = tea::solve_cg(*plain, o);
  o.preconditioner = tl::PreconKind::kJacDiag;
  const auto stats_pre = tea::solve_cg(*precon, o);
  ASSERT_TRUE(stats_plain.converged);
  ASSERT_TRUE(stats_pre.converged);
  EXPECT_LT(stats_pre.iterations, stats_plain.iterations);
}

TEST(Preconditioner, SameSolutionAsPlainCg) {
  const auto cfg = problem(24);
  auto plain = prepared(cfg);
  auto precon = prepared(cfg);
  tea::SolveOptions o;
  o.eps = 1e-14;
  (void)tea::solve_cg(*plain, o);
  o.preconditioner = tl::PreconKind::kJacDiag;
  (void)tea::solve_cg(*precon, o);
  auto up = plain->store().view(tea::FieldId::kU);
  auto uq = precon->store().view(tea::FieldId::kU);
  for (int j = 0; j < 24; ++j) {
    for (int i = 0; i < 24; ++i) {
      ASSERT_NEAR(uq(i, j), up(i, j), 1e-6 * std::max(1.0, std::fabs(up(i, j))));
    }
  }
}

class PreconBackendTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PreconBackendTest, PreconditionedRunMatchesSerial) {
  auto cfg = problem(32);
  cfg.preconditioner = tl::PreconKind::kJacDiag;
  const auto ref = tea::run_simulation("serial", cfg);
  const auto run = tea::run_simulation(GetParam(), cfg);
  ASSERT_TRUE(ref.all_converged());
  EXPECT_TRUE(run.all_converged()) << GetParam();
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Backends, PreconBackendTest,
                         ::testing::Values("manual-omp", "manual-mpi",
                                           "manual-cuda", "manual-acc-gpu",
                                           "ops-omp", "ops-tiled",
                                           "kokkos-cuda", "raja-omp"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- read_field across backends ----------------------------------------------------

class ReadFieldTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ReadFieldTest, DensityRoundTripsThroughBackend) {
  const auto cfg = problem(20);
  if (tea::backend_is_distributed(GetParam())) {
    GTEST_SKIP() << "distributed read_field is per-rank";
  }
  // Drive through the registry to exercise the full setup path.
  tea::RunOptions opts;
  const auto run = tea::run_simulation(GetParam(), cfg, opts);
  ASSERT_TRUE(run.all_converged());
  // Re-create the backend directly for field access.
  // (run_simulation owns its backend; the public API for field access is a
  // fresh driver run.)
  (void)run;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Smoke, ReadFieldTest,
                         ::testing::Values("manual-omp", "kokkos-cuda"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ReadField, MatchesStoreValues) {
  const auto cfg = problem(12);
  auto b = prepared(cfg);
  std::vector<double> out(12 * 12, -1.0);
  b->read_field(tea::FieldId::kDensity, out);
  auto v = b->store().view(tea::FieldId::kDensity);
  for (int j = 0; j < 12; ++j) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(j) * 12 + i], v(i, j));
    }
  }
  const auto ext = b->local_extent();
  EXPECT_EQ(ext.nx, 12);
  EXPECT_EQ(ext.gnx, 12);
  EXPECT_EQ(ext.x0, 0);
  std::vector<double> tiny(4);
  EXPECT_THROW(b->read_field(tea::FieldId::kDensity, tiny), tl::Error);
}

// --- VTK ---------------------------------------------------------------------------

TEST(Vtk, WritesLoadableFile) {
  const std::string path = "/tmp/tea_test_snapshot.vtk";
  std::vector<double> a{1, 2, 3, 4, 5, 6};
  tl::write_vtk(path, 3, 2, 0.5, 0.25, {{"alpha", a}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 4 3 1"), std::string::npos);
  EXPECT_NE(text.find("CELL_DATA 6"), std::string::npos);
  EXPECT_NE(text.find("SCALARS alpha double 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, RejectsBadSizes) {
  std::vector<double> a{1, 2, 3};
  EXPECT_THROW(tl::write_vtk("/tmp/x.vtk", 2, 2, 1, 1, {{"a", a}}), tl::Error);
  EXPECT_THROW(tl::write_vtk("/nonexistent-dir/x.vtk", 1, 3, 1, 1, {{"a", a}}),
               tl::Error);
}

TEST(Vtk, SnapshotFromBackend) {
  const auto cfg = problem(10);
  auto b = prepared(cfg);
  const std::string path = "/tmp/tea_test_backend.vtk";
  tea::write_vtk_snapshot(*b, cfg.dx(), cfg.dy(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("SCALARS temperature double 1"), std::string::npos);
  EXPECT_NE(ss.str().find("SCALARS density double 1"), std::string::npos);
  std::remove(path.c_str());
}

// --- report ------------------------------------------------------------------------

TEST(Report, ContainsConfigurationAndSteps) {
  const auto cfg = problem(16);
  const auto run = tea::run_simulation("serial", cfg);
  std::ostringstream os;
  tea::write_report(run, cfg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("backend            serial"), std::string::npos);
  EXPECT_NE(text.find("mesh               16 x 16"), std::string::npos);
  EXPECT_NE(text.find("solver             cg"), std::string::npos);
  EXPECT_NE(text.find("step"), std::string::npos);
  EXPECT_NE(text.find("wall clock"), std::string::npos);
}

TEST(Report, WritesToFile) {
  const auto cfg = problem(8);
  const auto run = tea::run_simulation("serial", cfg);
  const std::string path = "/tmp/tea_test_report.out";
  tea::write_report(run, cfg, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

// --- queued reflection tiling -------------------------------------------------------

TEST(QueuedHalo, ChebyChainsReduceTraffic) {
  // Single-rank tiled Chebyshev must move measurably fewer DRAM bytes than
  // untiled while producing the same answer.
  auto cfg = problem(128, tl::SolverKind::kCheby);
  tea::RunOptions one_rank;
  one_rank.ranks = 1;
  const auto untiled = tea::run_simulation("ops-mpi", cfg, one_rank);
  const auto tiled = tea::run_simulation("ops-tiled", cfg, one_rank);
  ASSERT_TRUE(untiled.all_converged());
  ASSERT_TRUE(tiled.all_converged());
  EXPECT_NEAR(tiled.final_summary.temp, untiled.final_summary.temp,
              1e-8 * std::fabs(untiled.final_summary.temp));
  EXPECT_LT(static_cast<double>(tiled.counters.total_bytes()),
            0.6 * static_cast<double>(untiled.counters.total_bytes()));
}

TEST(QueuedHalo, JacobiSolverStillCorrectUnderTiling) {
  auto cfg = problem(48, tl::SolverKind::kJacobi);
  cfg.max_iters = 50000;
  tea::RunOptions one_rank;
  one_rank.ranks = 1;
  const auto ref = tea::run_simulation("serial", cfg);
  const auto tiled = tea::run_simulation("ops-tiled", cfg, one_rank);
  ASSERT_TRUE(ref.all_converged());
  EXPECT_TRUE(tiled.all_converged());
  EXPECT_NEAR(tiled.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp));
}

TEST(QueuedHalo, PpcgUnderTilingMatchesSerial) {
  auto cfg = problem(48, tl::SolverKind::kPpcg);
  tea::RunOptions one_rank;
  one_rank.ranks = 1;
  const auto ref = tea::run_simulation("serial", cfg);
  const auto tiled = tea::run_simulation("ops-tiled", cfg, one_rank);
  ASSERT_TRUE(ref.all_converged());
  EXPECT_TRUE(tiled.all_converged());
  EXPECT_NEAR(tiled.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp));
}

}  // namespace
