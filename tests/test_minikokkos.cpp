// Unit tests for minikokkos: views, layouts, spaces, deep_copy/mirrors and
// parallel dispatch across all three execution spaces.
#include <gtest/gtest.h>

#include <type_traits>

#include "minikokkos/minikokkos.hpp"

namespace {

TEST(View, Rank1AllocatesZeroed) {
  kk::View1D<double> v("v", 100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.label(), "v");
  for (std::size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(v(i), 0.0);
}

TEST(View, SharedOwnershipSemantics) {
  kk::View1D<double> a("a", 10);
  kk::View1D<double> b = a;  // handle copy, same allocation
  b(3) = 7.0;
  EXPECT_DOUBLE_EQ(a(3), 7.0);
  EXPECT_EQ(a.data(), b.data());
}

TEST(View, Rank2LayoutRightStrides) {
  kk::View2D<double, kk::LayoutRight> v("v", 3, 4);  // 3 rows x 4 cols
  v(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(v.data()[1 * 4 + 2], 5.0);
  EXPECT_EQ(v.extent(0), 3);
  EXPECT_EQ(v.extent(1), 4);
}

TEST(View, Rank2LayoutLeftStrides) {
  kk::View2D<double, kk::LayoutLeft> v("v", 3, 4);
  v(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(v.data()[2 * 3 + 1], 5.0);
}

TEST(View, DefaultLayoutPerSpace) {
  using HostDefault = kk::View2D<double, void, kk::HostSpace>::layout;
  using DeviceDefault = kk::View2D<double, void, kk::SimGPUSpace>::layout;
  static_assert(std::is_same_v<HostDefault, kk::LayoutRight>);
  static_assert(std::is_same_v<DeviceDefault, kk::LayoutLeft>);
  SUCCEED();
}

TEST(DeepCopy, HostToHost) {
  kk::View1D<double> a("a", 50), b("b", 50);
  for (std::size_t i = 0; i < 50; ++i) a(i) = static_cast<double>(i);
  kk::deep_copy(b, a);
  EXPECT_DOUBLE_EQ(b(49), 49.0);
  kk::View1D<double> wrong("w", 51);
  EXPECT_THROW(kk::deep_copy(wrong, a), tl::Error);
}

TEST(DeepCopy, HostDeviceRoundTrip) {
  kk::View1D<double, kk::SimGPUSpace> dev("dev", 64);
  auto mirror = kk::create_mirror_view(dev);
  static_assert(std::is_same_v<decltype(mirror)::memory_space, kk::HostSpace>);
  for (std::size_t i = 0; i < 64; ++i) mirror(i) = 2.0 * static_cast<double>(i);
  kk::deep_copy(dev, mirror);
  kk::View1D<double, kk::HostSpace> back("back", 64);
  kk::deep_copy(back, dev);
  EXPECT_DOUBLE_EQ(back(10), 20.0);
}

TEST(DeepCopy, MirrorOfHostViewIsSameView) {
  kk::View1D<double> host("h", 8);
  auto mirror = kk::create_mirror_view(host);
  EXPECT_EQ(mirror.data(), host.data());
}

TEST(DeepCopy, Rank2MirrorKeepsLayout) {
  kk::View2D<double, void, kk::SimGPUSpace> dev("d", 4, 6);
  auto mirror = kk::create_mirror_view(dev);
  static_assert(
      std::is_same_v<decltype(mirror)::layout, kk::LayoutLeft>);
  mirror(2, 3) = 9.0;
  kk::deep_copy(dev, mirror);
  kk::View2D<double, kk::LayoutLeft, kk::HostSpace> back("b", 4, 6);
  kk::deep_copy(back, dev);
  EXPECT_DOUBLE_EQ(back(2, 3), 9.0);
}

// --- parallel dispatch across execution spaces ---------------------------------

template <typename Exec>
struct ExecName;
template <>
struct ExecName<kk::Serial> {
  static constexpr const char* value = "Serial";
};
template <>
struct ExecName<kk::Threads> {
  static constexpr const char* value = "Threads";
};
template <>
struct ExecName<kk::SimGPU> {
  static constexpr const char* value = "SimGPU";
};

template <typename Exec>
class ExecSpaceTest : public ::testing::Test {};

using ExecSpaces = ::testing::Types<kk::Serial, kk::Threads, kk::SimGPU>;
TYPED_TEST_SUITE(ExecSpaceTest, ExecSpaces);

TYPED_TEST(ExecSpaceTest, ParallelForRange) {
  using Exec = TypeParam;
  using Space = typename kk::SpaceOf<Exec>::type;
  kk::View1D<double, Space> v("v", 1000);
  kk::parallel_for("fill", kk::RangePolicy<Exec>(0, 1000),
                   [=](long i) { v(static_cast<std::size_t>(i)) = 3.0 * i; });
  auto host = kk::create_mirror_view(v);
  kk::deep_copy(host, v);
  EXPECT_DOUBLE_EQ(host(999), 2997.0);
  EXPECT_DOUBLE_EQ(host(0), 0.0);
}

TYPED_TEST(ExecSpaceTest, ParallelForMDRange) {
  using Exec = TypeParam;
  using Space = typename kk::SpaceOf<Exec>::type;
  kk::View1D<double, Space> v("v", 20 * 30);
  kk::parallel_for("fill2d", kk::MDRangePolicy2<Exec>(0, 20, 0, 30),
                   [=](long i0, long i1) {
                     v(static_cast<std::size_t>(i0 * 30 + i1)) =
                         static_cast<double>(i0 * 100 + i1);
                   });
  auto host = kk::create_mirror_view(v);
  kk::deep_copy(host, v);
  EXPECT_DOUBLE_EQ(host(5 * 30 + 7), 507.0);
}

TYPED_TEST(ExecSpaceTest, ParallelReduceSum) {
  using Exec = TypeParam;
  double result = -1.0;
  kk::parallel_reduce(
      "sum", kk::RangePolicy<Exec>(0, 10000),
      [](long i, double& acc) { acc += static_cast<double>(i); }, result);
  EXPECT_DOUBLE_EQ(result, 10000.0 * 9999.0 / 2.0);
}

TYPED_TEST(ExecSpaceTest, ReduceOverOffsetRange) {
  using Exec = TypeParam;
  double result = 0.0;
  kk::parallel_reduce(
      "sum", kk::RangePolicy<Exec>(100, 200),
      [](long, double& acc) { acc += 1.0; }, result);
  EXPECT_DOUBLE_EQ(result, 100.0);
}

TEST(Parallel, InstrumentationCountsHostLaunch) {
  const machine::CounterScope scope;
  kk::parallel_for("noop", kk::RangePolicy<kk::Serial>(0, 4), [](long) {});
  EXPECT_EQ(scope.delta().kernel_launches, 1);
}

TEST(Parallel, DeviceLaunchCountedByDevice) {
  const machine::CounterScope scope;
  kk::View1D<double, kk::SimGPUSpace> v("v", 16);
  kk::parallel_for("dev", kk::RangePolicy<kk::SimGPU>(0, 16),
                   [=](long i) { v(static_cast<std::size_t>(i)) = 1.0; });
  EXPECT_EQ(scope.delta().kernel_launches, 1);
}

}  // namespace
