// Tests for the net frontend (src/net): frame codec round-trips, framing
// robustness (truncation, bad magic/version/type, oversized declarations,
// checksum corruption, arbitrarily-split reads), and the server's contracts
// — bit-identical networked solves, pipelining, BUSY backpressure, survival
// of abrupt disconnects, per-request errors that keep the connection, the
// STATS frame, and the SIGTERM graceful drain (this suite runs under TSan
// in CI alongside test_service).
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <random>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/replay.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"

namespace {

tl::ProblemConfig tiny_problem(int mesh, int steps) {
  return results::bench_problem(mesh, steps);
}

std::string temp_socket(const std::string& name) {
  return "unix:" + testing::TempDir() + name;
}

/// Portable service shape shared by the server tests: no tuning (tuned
/// winners are machine-local), fixed shard sizes.
service::ServiceOptions portable_service() {
  service::ServiceOptions options;
  options.workers = 2;
  options.threads_per_worker = 2;
  options.enable_tuning = false;
  return options;
}

/// Hand-build a 16-byte header with arbitrary field values so tests can
/// corrupt each one independently.
std::string raw_header(std::uint32_t magic, std::uint16_t version,
                       std::uint16_t type, std::uint32_t payload_len,
                       std::uint32_t checksum) {
  std::string out;
  const auto u16 = [&out](std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
  };
  const auto u32 = [&out](std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
      out.push_back(static_cast<char>((v >> shift) & 0xff));
  };
  u32(magic);
  u16(version);
  u16(type);
  u32(payload_len);
  u32(checksum);
  return out;
}

/// A server + service running on its own IO thread for the duration of a
/// test; stops and joins on destruction.
struct TestServer {
  explicit TestServer(const std::string& name,
                      service::ServiceOptions svc_options = portable_service(),
                      bool start_service = true)
      : service(svc_options, nullptr) {
    net::ServerOptions options;
    options.address = temp_socket(name);
    options.start_service = start_service;
    server = std::make_unique<net::Server>(service, options);
    server->open();
    io_thread = std::thread([this] { server->run(); });
  }

  ~TestServer() {
    server->request_stop();
    io_thread.join();
    service.shutdown();
  }

  std::string address() const { return server->address().to_string(); }

  service::SolveService service;
  std::unique_ptr<net::Server> server;
  std::thread io_thread;
};

/// Blocking raw-socket helper for malformed-input tests: read frames off
/// `fd` until one decodes or the peer closes (returns false on EOF).
bool read_frame_blocking(int fd, net::FrameReader& reader, net::Frame& frame) {
  char chunk[512];
  while (true) {
    if (reader.next(frame)) return true;
    const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) return false;
    reader.feed(chunk, static_cast<std::size_t>(got));
  }
}

// ---------------------------------------------------------------------------
// Address grammar
// ---------------------------------------------------------------------------

TEST(NetAddress, ParsesUnixAndTcpSpecs) {
  const net::Address unix_addr = net::parse_address("unix:/run/tead.sock");
  EXPECT_TRUE(unix_addr.is_unix);
  EXPECT_EQ(unix_addr.path, "/run/tead.sock");
  EXPECT_EQ(unix_addr.to_string(), "unix:/run/tead.sock");

  const net::Address tcp_addr = net::parse_address("tcp:127.0.0.1:4501");
  EXPECT_FALSE(tcp_addr.is_unix);
  EXPECT_EQ(tcp_addr.host, "127.0.0.1");
  EXPECT_EQ(tcp_addr.port, 4501);
  EXPECT_EQ(tcp_addr.to_string(), "tcp:127.0.0.1:4501");
}

TEST(NetAddress, RejectsMalformedSpecs) {
  EXPECT_THROW(net::parse_address(""), tl::ConfigError);
  EXPECT_THROW(net::parse_address("ftp:/x"), tl::ConfigError);
  EXPECT_THROW(net::parse_address("unix:"), tl::ConfigError);
  EXPECT_THROW(net::parse_address("tcp:127.0.0.1"), tl::ConfigError);
  EXPECT_THROW(net::parse_address("tcp:127.0.0.1:notaport"), tl::ConfigError);
  EXPECT_THROW(net::parse_address("tcp:127.0.0.1:99999"), tl::ConfigError);
  // sun_path is ~108 bytes; longer paths must be refused, not truncated.
  EXPECT_THROW(net::parse_address("unix:/" + std::string(200, 'x')),
               tl::ConfigError);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(NetProtocol, FrameRoundTripsEveryType) {
  using net::FrameType;
  for (const FrameType type :
       {FrameType::kRequest, FrameType::kResponse, FrameType::kBusy,
        FrameType::kError, FrameType::kStatsRequest, FrameType::kStats}) {
    const std::string payload = "payload-" +
        std::to_string(static_cast<int>(type));
    const std::string bytes = net::encode_frame(type, payload);
    ASSERT_EQ(bytes.size(), net::kHeaderBytes + payload.size());

    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    net::Frame frame;
    ASSERT_TRUE(reader.next(frame));
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(reader.buffered(), 0u);
    EXPECT_FALSE(reader.next(frame));  // nothing left
  }
}

TEST(NetProtocol, ReaderReassemblesRandomlySplitStream) {
  // Several frames concatenated, fed in seeded-random slices: the reader
  // must yield exactly the original frames regardless of how the transport
  // fragments them.
  std::string stream;
  std::vector<std::string> payloads;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(std::string(static_cast<std::size_t>(17 * i + 1), 'a' + i));
    stream += net::encode_frame(net::FrameType::kRequest, payloads.back());
  }

  std::mt19937 rng(1234);
  net::FrameReader reader;
  std::size_t offset = 0, decoded = 0;
  net::Frame frame;
  while (offset < stream.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        stream.size() - offset, 1 + rng() % 23);
    reader.feed(stream.data() + offset, chunk);
    offset += chunk;
    while (reader.next(frame)) {
      ASSERT_LT(decoded, payloads.size());
      EXPECT_EQ(frame.payload, payloads[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, payloads.size());
}

TEST(NetProtocol, TruncatedFrameIsNotAnErrorJustIncomplete) {
  const std::string bytes =
      net::encode_frame(net::FrameType::kRequest, "abcdef");
  net::Frame frame;
  // Every proper prefix: needs-more-bytes, never a throw.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    net::FrameReader reader;
    reader.feed(bytes.data(), cut);
    EXPECT_FALSE(reader.next(frame)) << "prefix of " << cut << " bytes";
  }
}

TEST(NetProtocol, ClassifiesEachHeaderFaultAndPoisons) {
  const auto fault_of = [](const std::string& bytes) {
    net::FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    net::Frame frame;
    try {
      reader.next(frame);
    } catch (const net::ProtocolError& e) {
      // Poisoned: any further use is refused.
      EXPECT_THROW(reader.next(frame), tl::Error);
      return e.fault();
    }
    ADD_FAILURE() << "malformed header was accepted";
    return net::WireFault::kBadMagic;
  };

  EXPECT_EQ(fault_of(raw_header(0xdeadbeefu, net::kVersion, 1, 0,
                                net::payload_checksum(""))),
            net::WireFault::kBadMagic);
  EXPECT_EQ(fault_of(raw_header(net::kMagic, 99, 1, 0,
                                net::payload_checksum(""))),
            net::WireFault::kBadVersion);
  EXPECT_EQ(fault_of(raw_header(net::kMagic, net::kVersion, 77, 0,
                                net::payload_checksum(""))),
            net::WireFault::kBadType);
  // A hostile declared length is rejected from the header alone — no
  // payload bytes are ever awaited or buffered.
  EXPECT_EQ(fault_of(raw_header(net::kMagic, net::kVersion, 1,
                                net::kMaxPayloadBytes + 1, 0)),
            net::WireFault::kOversized);

  std::string corrupted = net::encode_frame(net::FrameType::kRequest, "data");
  corrupted[net::kHeaderBytes] ^= 0x01;  // flip one payload bit
  EXPECT_EQ(fault_of(corrupted), net::WireFault::kBadChecksum);
}

TEST(NetProtocol, EncodeFrameRefusesOversizedPayload) {
  EXPECT_THROW(net::encode_frame(net::FrameType::kRequest,
                                 std::string(net::kMaxPayloadBytes + 1, 'x')),
               tl::Error);
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

TEST(NetProtocol, RequestRoundTripPreservesProblemKey) {
  const tl::ProblemConfig problem = tiny_problem(24, 3);
  const net::WireRequest request = net::make_request(42, "bm24", problem);
  const net::WireRequest decoded =
      net::decode_request(net::encode_request(request));
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.label, "bm24");
  // The wire carries canonical deck text; parsing it back must land on the
  // identical canonical problem (the property the whole bit-identity
  // contract rests on).
  EXPECT_EQ(results::problem_key(net::request_problem(decoded)),
            results::problem_key(problem));
}

TEST(NetProtocol, ResponseRoundTripIsExactOnEveryField) {
  service::SolveResponse response;
  response.label = "req-1";
  response.key = "k_abc";
  response.variant = "manual-omp";
  response.converged = true;
  response.iterations = 87;
  response.inner_iterations = 261;
  response.initial_rr = 1.2345678901234567e-3;
  response.final_rr = 9.87654321098765432e-13;
  response.final_temperature = 101.32476099999999;
  response.solve_seconds = 0.03125;
  response.queue_seconds = 1e-6;
  response.latency_seconds = 0.031251;
  response.batch_size = 3;

  net::Frame frame;
  frame.type = net::FrameType::kResponse;
  frame.payload = net::encode_response(9, response);
  const net::WireReply reply = net::decode_reply(frame);
  EXPECT_EQ(reply.id, 9u);
  EXPECT_FALSE(reply.busy);
  EXPECT_EQ(reply.response.label, response.label);
  EXPECT_EQ(reply.response.key, response.key);
  EXPECT_EQ(reply.response.variant, response.variant);
  EXPECT_EQ(reply.response.converged, response.converged);
  EXPECT_EQ(reply.response.iterations, response.iterations);
  EXPECT_EQ(reply.response.inner_iterations, response.inner_iterations);
  // Bit-exact doubles: %.17g round-trips IEEE754 exactly.
  EXPECT_EQ(reply.response.initial_rr, response.initial_rr);
  EXPECT_EQ(reply.response.final_rr, response.final_rr);
  EXPECT_EQ(reply.response.final_temperature, response.final_temperature);
  EXPECT_EQ(reply.response.solve_seconds, response.solve_seconds);
  EXPECT_EQ(reply.response.batch_size, response.batch_size);
  EXPECT_TRUE(reply.response.ok());
}

TEST(NetProtocol, BusyAndErrorRepliesDecodeStructured) {
  net::Frame busy;
  busy.type = net::FrameType::kBusy;
  busy.payload = net::encode_busy(5, "queue full");
  const net::WireReply busy_reply = net::decode_reply(busy);
  EXPECT_EQ(busy_reply.id, 5u);
  EXPECT_TRUE(busy_reply.busy);

  net::Frame error;
  error.type = net::FrameType::kError;
  error.payload = net::encode_error(7, "bad-deck", "no such solver");
  const net::WireReply error_reply = net::decode_reply(error);
  EXPECT_EQ(error_reply.id, 7u);
  EXPECT_FALSE(error_reply.busy);
  EXPECT_EQ(error_reply.response.error, "bad-deck: no such solver");
}

TEST(NetProtocol, StatsRoundTrip) {
  service::ServiceStats stats;
  stats.submitted = 10;
  stats.rejected = 2;
  stats.completed = 8;
  stats.batches = 5;
  stats.batched_solves = 4;
  stats.fallback_solves = 1;
  stats.plan.hits = 6;
  stats.plan.misses = 2;
  stats.plan.tunes = 2;
  stats.plan.evictions = 1;
  stats.arena.allocated = 3;
  stats.arena.reused = 7;
  const service::ServiceStats decoded =
      net::decode_stats(net::encode_stats(stats));
  EXPECT_EQ(decoded.submitted, stats.submitted);
  EXPECT_EQ(decoded.rejected, stats.rejected);
  EXPECT_EQ(decoded.completed, stats.completed);
  EXPECT_EQ(decoded.batches, stats.batches);
  EXPECT_EQ(decoded.batched_solves, stats.batched_solves);
  EXPECT_EQ(decoded.fallback_solves, stats.fallback_solves);
  EXPECT_EQ(decoded.plan.hits, stats.plan.hits);
  EXPECT_EQ(decoded.plan.misses, stats.plan.misses);
  EXPECT_EQ(decoded.plan.tunes, stats.plan.tunes);
  EXPECT_EQ(decoded.plan.evictions, stats.plan.evictions);
  EXPECT_EQ(decoded.arena.allocated, stats.arena.allocated);
  EXPECT_EQ(decoded.arena.reused, stats.arena.reused);
}

TEST(NetProtocol, DecodeRejectsMissingFields) {
  EXPECT_THROW(net::decode_request("{}"), tl::ConfigError);
  EXPECT_THROW(net::decode_request("not json"), tl::ConfigError);
  net::Frame frame;
  frame.type = net::FrameType::kResponse;
  frame.payload = "{}";
  EXPECT_THROW(net::decode_reply(frame), tl::ConfigError);
}

// ---------------------------------------------------------------------------
// Server end-to-end
// ---------------------------------------------------------------------------

TEST(NetServer, RoundTripMatchesInProcessBitwise) {
  // The keystone: a networked solve must be bit-identical to the same
  // problem solved in-process — iterations, residuals, conserved
  // temperature, everything golden_responses_json pins.
  gen::GenOptions gen_options;
  gen_options.seed = 3;
  gen_options.count = 2;
  const std::vector<service::SolveRequest> requests =
      service::requests_from_gen(gen_options);

  std::vector<service::SolveResponse> local;
  {
    service::SolveService daemon(portable_service(), nullptr);
    daemon.start();
    for (const service::SolveRequest& request : requests) {
      const service::Ticket ticket = daemon.submit(request);
      ASSERT_TRUE(ticket);
      local.push_back(daemon.wait(ticket));
    }
    daemon.shutdown();
  }

  TestServer server("keystone.sock");
  net::Client client(server.address());
  std::vector<service::SolveResponse> remote;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const net::WireReply reply =
        client.solve(requests[i].problem, requests[i].label);
    ASSERT_FALSE(reply.busy);
    ASSERT_TRUE(reply.response.ok()) << reply.response.error;
    EXPECT_EQ(reply.response.key, local[i].key);
    EXPECT_EQ(reply.response.variant, local[i].variant);
    EXPECT_EQ(reply.response.converged, local[i].converged);
    EXPECT_EQ(reply.response.iterations, local[i].iterations);
    EXPECT_EQ(reply.response.inner_iterations, local[i].inner_iterations);
    EXPECT_EQ(reply.response.initial_rr, local[i].initial_rr);
    EXPECT_EQ(reply.response.final_rr, local[i].final_rr);
    EXPECT_EQ(reply.response.final_temperature, local[i].final_temperature);
    remote.push_back(reply.response);
  }
  // The byte-level form of the same contract: the golden JSON the net-smoke
  // CI job `cmp`s must match exactly.
  EXPECT_EQ(service::golden_responses_json(remote),
            service::golden_responses_json(local));
}

TEST(NetServer, PipelinedRequestsMatchOutOfOrderWaits) {
  TestServer server("pipeline.sock");
  net::Client client(server.address());

  const tl::ProblemConfig a = tiny_problem(16, 2);
  const tl::ProblemConfig b = tiny_problem(24, 2);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(client.submit(i % 2 == 0 ? a : b,
                                "req-" + std::to_string(i)));
  // Wait in reverse submission order: replies arrive in completion order
  // and the client must stash whatever it reads past.
  for (std::size_t i = ids.size(); i-- > 0;) {
    const net::WireReply reply = client.wait(ids[i]);
    ASSERT_FALSE(reply.busy);
    ASSERT_TRUE(reply.response.ok()) << reply.response.error;
    EXPECT_EQ(reply.response.label, "req-" + std::to_string(i));
    EXPECT_TRUE(reply.response.converged);
  }
}

TEST(NetServer, QueueFullYieldsBusyFrameNotDropOrHang) {
  // Deterministic backpressure: the service is NOT started, so the first
  // request parks in the queue (capacity 1) and the second must be answered
  // with a BUSY frame immediately.
  service::ServiceOptions svc_options = portable_service();
  svc_options.queue_capacity = 1;
  TestServer server("busy.sock", svc_options, /*start_service=*/false);
  net::Client client(server.address());

  const tl::ProblemConfig problem = tiny_problem(16, 2);
  const std::uint64_t first = client.submit(problem, "admitted");
  const std::uint64_t second = client.submit(problem, "refused");
  const net::WireReply busy = client.wait(second);
  EXPECT_TRUE(busy.busy);

  // Start the shards: the parked request completes normally — backpressure
  // refused the overflow, it never lost admitted work.
  server.service.start();
  const net::WireReply reply = client.wait(first);
  ASSERT_FALSE(reply.busy);
  ASSERT_TRUE(reply.response.ok()) << reply.response.error;
  EXPECT_TRUE(reply.response.converged);
}

TEST(NetServer, SurvivesAbruptDisconnectMidRequest) {
  TestServer server("abrupt.sock");
  const net::Address address = net::parse_address(server.address());
  const tl::ProblemConfig problem = tiny_problem(16, 2);

  {
    // Half a frame, then vanish.
    net::Fd fd = net::connect_to(address);
    const std::string bytes = net::encode_frame(
        net::FrameType::kRequest,
        net::encode_request(net::make_request(1, "half", problem)));
    net::send_all(fd.get(), bytes.data(), bytes.size() / 2);
  }
  {
    // A full request, then vanish before the response can be written: the
    // solve still runs and its completion must be dropped cleanly.
    net::Fd fd = net::connect_to(address);
    const std::string bytes = net::encode_frame(
        net::FrameType::kRequest,
        net::encode_request(net::make_request(2, "vanish", problem)));
    net::send_all(fd.get(), bytes.data(), bytes.size());
  }

  // The server is still fully functional for the next client.
  net::Client client(server.address());
  const net::WireReply reply = client.solve(problem, "after");
  ASSERT_TRUE(reply.response.ok()) << reply.response.error;
  EXPECT_TRUE(reply.response.converged);
}

TEST(NetServer, MalformedStreamGetsErrorFrameThenClose) {
  TestServer server("garbage.sock");
  net::Fd fd = net::connect_to(net::parse_address(server.address()));
  const std::string garbage(64, 'Z');  // wrong magic from byte 0
  net::send_all(fd.get(), garbage.data(), garbage.size());

  net::FrameReader reader;
  net::Frame frame;
  ASSERT_TRUE(read_frame_blocking(fd.get(), reader, frame));
  EXPECT_EQ(frame.type, net::FrameType::kError);
  const net::WireReply reply = net::decode_reply(frame);
  EXPECT_EQ(reply.id, 0u);  // connection-level
  EXPECT_NE(reply.response.error.find("bad-magic"), std::string::npos)
      << reply.response.error;
  // ...then the server closes: EOF, never a hang.
  EXPECT_FALSE(read_frame_blocking(fd.get(), reader, frame));
}

TEST(NetServer, BadDeckAnswersPerRequestErrorAndKeepsConnection) {
  TestServer server("baddeck.sock");
  net::Fd fd = net::connect_to(net::parse_address(server.address()));

  net::WireRequest bad;
  bad.id = 11;
  bad.label = "bad";
  bad.deck = "this is not a deck";
  const std::string bytes =
      net::encode_frame(net::FrameType::kRequest, net::encode_request(bad));
  net::send_all(fd.get(), bytes.data(), bytes.size());

  net::FrameReader reader;
  net::Frame frame;
  ASSERT_TRUE(read_frame_blocking(fd.get(), reader, frame));
  EXPECT_EQ(frame.type, net::FrameType::kError);
  const net::WireReply reply = net::decode_reply(frame);
  EXPECT_EQ(reply.id, 11u);  // echoed: a payload error is per-request...
  EXPECT_NE(reply.response.error.find("bad-deck"), std::string::npos);

  // ...and the connection stays in sync: a stats query still answers.
  const std::string stats_bytes =
      net::encode_frame(net::FrameType::kStatsRequest, "{}");
  net::send_all(fd.get(), stats_bytes.data(), stats_bytes.size());
  ASSERT_TRUE(read_frame_blocking(fd.get(), reader, frame));
  EXPECT_EQ(frame.type, net::FrameType::kStats);
}

TEST(NetServer, StatsFrameMatchesServiceCounters) {
  TestServer server("stats.sock");
  net::Client client(server.address());
  const tl::ProblemConfig problem = tiny_problem(16, 2);
  for (int i = 0; i < 3; ++i) {
    const net::WireReply reply =
        client.solve(problem, "s" + std::to_string(i));
    ASSERT_TRUE(reply.response.ok()) << reply.response.error;
  }
  const service::ServiceStats wire = client.stats();
  const service::ServiceStats local = server.service.stats();
  EXPECT_EQ(wire.submitted, 3);
  EXPECT_EQ(wire.completed, 3);
  EXPECT_EQ(wire.submitted, local.submitted);
  EXPECT_EQ(wire.completed, local.completed);
  EXPECT_EQ(wire.arena.allocated, local.arena.allocated);
  EXPECT_EQ(wire.arena.reused, local.arena.reused);
}

TEST(NetServer, NetReplayDriverRetriesBusyAndPreservesOrder) {
  service::ServiceOptions svc_options = portable_service();
  svc_options.queue_capacity = 2;  // small bound: forces BUSY retries
  TestServer server("replaydrv.sock", svc_options);

  gen::GenOptions gen_options;
  gen_options.seed = 3;
  gen_options.count = 2;
  const std::vector<service::SolveRequest> requests =
      service::requests_from_gen(gen_options);

  net::NetReplayOptions options;
  options.connections = 2;
  options.repeats = 2;
  options.window = 8;  // deeper than the queue bound
  const net::NetReplayReport report =
      net::run_net_replay(server.address(), requests, options);
  ASSERT_EQ(report.responses.size(),
            requests.size() * 2u * 2u);  // repeats x connections
  EXPECT_TRUE(report.all_ok());
  // Sequence slots survive BUSY resubmission: each connection's block lists
  // the population in submission order.
  for (std::size_t i = 0; i < report.responses.size(); ++i)
    EXPECT_EQ(report.responses[i].label,
              requests[i % requests.size()].label);
}

TEST(NetServer, SigtermDrainsInFlightBeforeExit) {
  // The lifecycle pin: SIGTERM while requests are parked in the queue must
  // answer every one of them before run() returns — listener closed first,
  // in-flight work never abandoned.
  service::ServiceOptions svc_options = portable_service();
  TestServer server("sigterm.sock", svc_options, /*start_service=*/false);
  net::install_signal_handlers(server.server.get());

  net::Client client(server.address());
  const tl::ProblemConfig problem = tiny_problem(16, 2);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(client.submit(problem, "inflight-" + std::to_string(i)));
  // Wait until the server has admitted all three (none can complete: the
  // worker shards are not running yet).
  while (server.server->io_stats().requests < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::raise(SIGTERM);           // -> request_stop(), drain begins
  server.service.start();        // shards answer the parked requests
  for (const std::uint64_t id : ids) {
    const net::WireReply reply = client.wait(id);
    ASSERT_FALSE(reply.busy);
    ASSERT_TRUE(reply.response.ok()) << reply.response.error;
    EXPECT_TRUE(reply.response.converged);
  }
  server.io_thread.join();       // run() returned after the drain
  server.io_thread = std::thread([] {});  // keep the destructor joinable
  net::install_signal_handlers(nullptr);

  // The listener is gone: new connections must be refused.
  EXPECT_THROW(net::Client refused(server.address()), tl::Error);
}

}  // namespace
