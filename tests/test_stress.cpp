// Concurrency stress and robustness tests: pools and mailboxes under
// contention, device memory exhaustion behaviour, large-world collectives,
// repeated construction/teardown, and boundary meshes (1-wide, tall-thin).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "minimpi/comm.hpp"
#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace {

TEST(Stress, PoolSurvivesManySmallRegions) {
  tlp::ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 2000; ++rep) {
    pool.parallel_for(0, 64, [&](long lo, long hi) { total += hi - lo; });
  }
  EXPECT_EQ(total.load(), 2000L * 64);
}

TEST(Stress, PoolsConstructedAndDestroyedRepeatedly) {
  for (int rep = 0; rep < 50; ++rep) {
    tlp::ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_region([&](int, int) { count++; });
    ASSERT_EQ(count.load(), 4);
  }
}

TEST(Stress, ConcurrentReducesAreIndependent) {
  // Two pools reducing simultaneously from different threads must not
  // interfere (regression guard for shared thread-id slots).
  tlp::ThreadPool outer(2);
  std::vector<double> results(2, 0.0);
  outer.parallel_region([&](int tid, int) {
    tlp::ThreadPool inner(3);
    results[static_cast<std::size_t>(tid)] = inner.parallel_reduce<double>(
        0, 10000, 0.0,
        [&](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) acc += tid + 1;
          return acc;
        },
        [](double a, double b) { return a + b; });
  });
  EXPECT_DOUBLE_EQ(results[0], 10000.0);
  EXPECT_DOUBLE_EQ(results[1], 20000.0);
}

TEST(Stress, MailboxManyToOneFanIn) {
  minimpi::run_world(8, [](minimpi::Comm& comm) {
    constexpr int kMessages = 200;
    if (comm.rank() == 0) {
      long sum = 0;
      for (int k = 0; k < kMessages * 7; ++k) {
        sum += comm.recv_value<int>(minimpi::kAnySource, 9);
      }
      EXPECT_EQ(sum, 7L * kMessages * (kMessages - 1) / 2);
    } else {
      for (int k = 0; k < kMessages; ++k) comm.send_value(k, 0, 9);
    }
  });
}

TEST(Stress, CollectiveStormStaysOrdered) {
  minimpi::run_world(6, [](minimpi::Comm& comm) {
    for (int round = 0; round < 100; ++round) {
      const double v = comm.allreduce(static_cast<double>(round),
                                      minimpi::ReduceOp::kSum);
      ASSERT_DOUBLE_EQ(v, 6.0 * round);
      const auto all = comm.allgather(comm.rank() * 1000 + round);
      ASSERT_EQ(all.size(), 6u);
      ASSERT_EQ(all[3], 3000 + round);
    }
  });
}

TEST(Stress, DeviceAllocationChurn) {
  simgpu::Device dev(std::size_t(8) << 20);
  std::vector<void*> live;
  for (int rep = 0; rep < 500; ++rep) {
    live.push_back(dev.allocate(1024 * (1 + rep % 7)));
    if (live.size() > 10) {
      dev.deallocate(live.front());
      live.erase(live.begin());
    }
  }
  for (void* p : live) dev.deallocate(p);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Stress, DeviceRecoversAfterOom) {
  simgpu::Device dev(1 << 16);
  void* a = dev.allocate(1 << 15);
  EXPECT_THROW(dev.allocate(1 << 15 | 1), tl::DeviceError);
  dev.deallocate(a);
  void* b = dev.allocate(1 << 15);
  EXPECT_NE(b, nullptr);
  dev.deallocate(b);
}

// --- boundary meshes ---------------------------------------------------------------

tl::ProblemConfig mesh_problem(int nx, int ny) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = nx;
  cfg.problem().y_cells = ny;
  cfg.problem().end_step = 1;
  cfg.problem().eps = 1e-10;
  return cfg.problem();
}

class OddMeshTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::string>> {};

TEST_P(OddMeshTest, ConvergesAndMatchesSerial) {
  const auto& [nx, ny, backend] = GetParam();
  const auto cfg = mesh_problem(nx, ny);
  const auto ref = tea::run_simulation("serial", cfg);
  tea::RunOptions o;
  o.ranks = 3;  // deliberately awkward for decomposition
  const auto run = tea::run_simulation(backend, cfg, o);
  ASSERT_TRUE(ref.all_converged());
  EXPECT_TRUE(run.all_converged()) << backend << " " << nx << "x" << ny;
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-7 * std::fabs(ref.final_summary.temp));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OddMeshTest,
    ::testing::Combine(::testing::Values(5, 31), ::testing::Values(7, 64),
                       ::testing::Values("manual-mpi", "ops-tiled",
                                         "manual-cuda")),
    [](const auto& info) {
      std::string name = std::get<2>(info.param) + "_" +
                         std::to_string(std::get<0>(info.param)) + "x" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Robustness, MoreRanksThanRows) {
  // 8 ranks on a 16x4 mesh: some ranks own very few rows.
  const auto cfg = mesh_problem(16, 4);
  const auto ref = tea::run_simulation("serial", cfg);
  tea::RunOptions o;
  o.ranks = 8;
  const auto run = tea::run_simulation("manual-mpi", cfg, o);
  EXPECT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp));
}

TEST(Robustness, RepeatedRunsAreDeterministic) {
  const auto cfg = mesh_problem(40, 40);
  const auto a = tea::run_simulation("ops-omp", cfg);
  const auto b = tea::run_simulation("ops-omp", cfg);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_DOUBLE_EQ(a.final_summary.temp, b.final_summary.temp);
  EXPECT_DOUBLE_EQ(a.final_summary.ie, b.final_summary.ie);
}

TEST(Robustness, BackToBackGpuBackendsShareDevice) {
  // The global simulated device must be reusable across backends without
  // leaking allocations between runs.
  const auto cfg = mesh_problem(32, 32);
  const std::size_t before = simgpu::default_device().bytes_allocated();
  for (const char* id : {"manual-cuda", "kokkos-cuda", "raja-cuda",
                         "ops-cuda", "manual-cuda"}) {
    const auto run = tea::run_simulation(id, cfg);
    ASSERT_TRUE(run.all_converged()) << id;
  }
  EXPECT_EQ(simgpu::default_device().bytes_allocated(), before);
}

TEST(Robustness, TinyMeshOnEveryBackendFamily) {
  const auto cfg = mesh_problem(3, 3);
  const auto ref = tea::run_simulation("serial", cfg);
  for (const char* id : {"manual-omp", "manual-cuda", "ops-omp",
                         "kokkos-omp", "raja-omp"}) {
    const auto run = tea::run_simulation(id, cfg);
    EXPECT_TRUE(run.all_converged()) << id;
    EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
                1e-8 * std::fabs(ref.final_summary.temp))
        << id;
  }
}

}  // namespace
