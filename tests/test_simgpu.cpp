// Unit tests for the simulated GPU: device-memory discipline, launch
// geometry coverage, deterministic reductions, and instrumentation effects.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "machine/instrumentation.hpp"
#include "simgpu/device.hpp"
#include "simgpu/device_buffer.hpp"

namespace {

TEST(DeviceMemory, AllocateTracksAndFrees) {
  simgpu::Device dev(1 << 20);
  void* a = dev.allocate(1000);
  void* b = dev.allocate(2000);
  EXPECT_EQ(dev.bytes_allocated(), 3000u);
  dev.deallocate(a);
  EXPECT_EQ(dev.bytes_allocated(), 2000u);
  dev.deallocate(b);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  simgpu::Device dev(1024);
  void* a = dev.allocate(1000);
  EXPECT_THROW(dev.allocate(100), tl::DeviceError);
  dev.deallocate(a);
  EXPECT_NO_THROW(dev.deallocate(nullptr));
}

TEST(DeviceMemory, HugeRequestCannotWrapTheCapacityCheck) {
  // `allocated + bytes > capacity` wraps for bytes near SIZE_MAX and would
  // admit the allocation; the check must be phrased subtraction-side.
  simgpu::Device dev(1024);
  EXPECT_THROW(dev.allocate(SIZE_MAX), tl::DeviceError);
  void* a = dev.allocate(16);
  EXPECT_THROW(dev.allocate(SIZE_MAX - 8), tl::DeviceError);
  EXPECT_EQ(dev.bytes_allocated(), 16u);
  dev.deallocate(a);
}

TEST(DeviceScope, BindsAndRestoresThreadLocally) {
  simgpu::Device& global = simgpu::default_device();
  simgpu::Device mine(1 << 20);
  {
    const simgpu::DeviceScope scope(&mine);
    EXPECT_EQ(&simgpu::default_device(), &mine);
    // Nested scopes shadow and restore in LIFO order.
    simgpu::Device inner(1 << 20);
    {
      const simgpu::DeviceScope nested(&inner);
      EXPECT_EQ(&simgpu::default_device(), &inner);
    }
    EXPECT_EQ(&simgpu::default_device(), &mine);
  }
  EXPECT_EQ(&simgpu::default_device(), &global);
}

TEST(DeviceScope, DoesNotLeakAcrossThreads) {
  simgpu::Device mine(1 << 20);
  const simgpu::DeviceScope scope(&mine);
  simgpu::Device* seen = nullptr;
  std::thread other([&] { seen = &simgpu::default_device(); });
  other.join();
  EXPECT_NE(seen, &mine);  // the binding is thread-local
  EXPECT_EQ(&simgpu::default_device(), &mine);
}

TEST(DeviceMemory, CopyValidatesDevicePointers) {
  simgpu::Device dev(1 << 20);
  std::vector<double> host(10, 1.0);
  // Host pointer used as a device destination must be rejected.
  EXPECT_THROW(dev.memcpy_h2d(host.data(), host.data(), 80), tl::DeviceError);
  void* d = dev.allocate(80);
  EXPECT_NO_THROW(dev.memcpy_h2d(d, host.data(), 80));
  // Overrunning the allocation is rejected too.
  EXPECT_THROW(dev.memcpy_h2d(d, host.data(), 81), tl::DeviceError);
  dev.deallocate(d);
}

TEST(DeviceMemory, RoundTripPreservesData) {
  simgpu::Device dev(1 << 20);
  std::vector<double> out(257);
  std::iota(out.begin(), out.end(), 0.0);
  std::vector<double> back(257, -1.0);
  void* d = dev.allocate(257 * sizeof(double));
  dev.memcpy_h2d(d, out.data(), 257 * sizeof(double));
  dev.memcpy_d2h(back.data(), d, 257 * sizeof(double));
  EXPECT_EQ(out, back);
  dev.deallocate(d);
}

TEST(DeviceBuffer, RaiiReleasesMemory) {
  simgpu::Device dev(1 << 20);
  {
    simgpu::DeviceBuffer<double> buf(dev, 100);
    EXPECT_EQ(dev.bytes_allocated(), 800u);
    simgpu::DeviceBuffer<double> moved = std::move(buf);
    EXPECT_EQ(moved.size(), 100u);
  }
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(DeviceBuffer, UploadDownload) {
  simgpu::Device dev(1 << 20);
  simgpu::DeviceBuffer<double> buf(dev, 64);
  std::vector<double> v(64, 3.25);
  buf.upload(v);
  std::vector<double> w(64, 0.0);
  buf.download(w);
  EXPECT_EQ(v, w);
  std::vector<double> too_big(65);
  EXPECT_THROW(buf.upload(too_big), tl::Error);
}

class LaunchGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LaunchGeometry, Covers2DIndexSpaceExactlyOnce) {
  const auto [nx, ny, bx, by] = GetParam();
  simgpu::Device dev(1 << 24);
  dev.set_block_size(bx, by);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(nx) * ny);
  dev.launch_2d("cover", nx, ny, {}, [&](int i, int j) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, nx);
    ASSERT_GE(j, 0);
    ASSERT_LT(j, ny);
    hits[static_cast<std::size_t>(j) * nx + i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaunchGeometry,
    ::testing::Values(std::tuple{1, 1, 64, 8}, std::tuple{63, 7, 64, 8},
                      std::tuple{64, 8, 64, 8}, std::tuple{65, 9, 64, 8},
                      std::tuple{100, 100, 16, 16}, std::tuple{37, 53, 1, 1},
                      std::tuple{128, 3, 32, 4}));

TEST(Launch, OneDimensionalCoverage) {
  simgpu::Device dev(1 << 24);
  dev.set_block_size(64, 8);
  std::vector<std::atomic<int>> hits(10000);
  dev.launch_1d("cover1d", 10000, {}, [&](long i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Launch, EmptyLaunchIsNoop) {
  simgpu::Device dev(1 << 20);
  bool touched = false;
  dev.launch_2d("empty", 0, 5, {}, [&](int, int) { touched = true; });
  dev.launch_1d("empty1d", 0, {}, [&](long) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Launch, RejectsBadBlockSize) {
  simgpu::Device dev(1 << 20);
  EXPECT_THROW(dev.set_block_size(0, 8), tl::Error);
}

TEST(Reduce, MatchesSerialSum) {
  simgpu::Device dev(1 << 20);
  const long n = 100001;
  const double sum =
      dev.reduce_sum("sum", n, [](long i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(Reduce, DeterministicForFixedGeometry) {
  simgpu::Device dev(1 << 20);
  dev.set_block_size(64, 8);
  std::vector<double> values(50000);
  tl::Rng rng(3);
  // Adversarial magnitudes so ordering matters.
  for (auto& v : values) v = 1.0 / (1.0 + rng.next_double() * 1e6);
  const auto run = [&] {
    return dev.reduce_sum("det", static_cast<long>(values.size()),
                          [&](long i) { return values[static_cast<std::size_t>(i)]; });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
}

TEST(Instrumentation, LaunchAndTrafficCounted) {
  machine::Instrumentation& instr = machine::Instrumentation::global();
  simgpu::Device dev(1 << 20);
  const machine::CounterScope scope(instr);
  dev.launch_2d("counted", 10, 10, {800, 400, 1300}, [](int, int) {});
  const auto delta = scope.delta();
  EXPECT_EQ(delta.kernel_launches, 1);
  EXPECT_EQ(delta.bytes_read, 800);
  EXPECT_EQ(delta.bytes_written, 400);
  EXPECT_EQ(delta.flops, 1300);
}

TEST(Instrumentation, CopiesAndReductionsCounted) {
  machine::Instrumentation& instr = machine::Instrumentation::global();
  simgpu::Device dev(1 << 20);
  simgpu::DeviceBuffer<double> buf(dev, 128);
  std::vector<double> host(128, 1.0);
  const machine::CounterScope scope(instr);
  buf.upload(host);
  buf.download(host);
  (void)dev.reduce_sum("r", 128, [](long) { return 1.0; });
  const auto delta = scope.delta();
  EXPECT_EQ(delta.h2d_bytes, 1024);
  EXPECT_GE(delta.d2h_bytes, 1024 + 8);  // download + reduction scalar
  EXPECT_EQ(delta.reductions, 1);
  EXPECT_EQ(delta.kernel_launches, 2);  // partials + final pass
}

TEST(Device, LaunchesCounterAdvances) {
  simgpu::Device dev(1 << 20);
  const long before = dev.launches();
  dev.launch_1d("a", 10, {}, [](long) {});
  dev.launch_2d("b", 2, 2, {}, [](int, int) {});
  EXPECT_EQ(dev.launches(), before + 2);
}

TEST(Reduce, KernelCanWriteAndReduceSimultaneously) {
  // The Jacobi device kernel both writes u and reduces |du|; verify the
  // pattern works.
  simgpu::Device dev(1 << 20);
  simgpu::DeviceBuffer<double> buf(dev, 100);
  std::vector<double> init(100, 0.0);
  buf.upload(init);
  double* p = buf.data();
  const double total = dev.reduce_sum("write+reduce", 100, [p](long i) {
    p[i] = static_cast<double>(i);
    return 1.0;
  });
  EXPECT_DOUBLE_EQ(total, 100.0);
  std::vector<double> out(100);
  buf.download(out);
  EXPECT_DOUBLE_EQ(out[42], 42.0);
}

}  // namespace
