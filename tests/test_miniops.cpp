// Unit and integration tests for miniops: dats, par_loops, stencils,
// dirty-bit halo maintenance, reductions, device contexts, and MPI
// decomposition equivalence against the sequential engine.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "minimpi/comm.hpp"
#include "miniops/miniops.hpp"

namespace {

using ops::Acc;
using ops::AccessMode;
using ops::arg_dat;
using ops::arg_gbl;
using ops::Context;
using ops::ContextOptions;
using ops::Range;
using ops::Stencil;

TEST(Stencil, ExtentsComputed) {
  EXPECT_EQ(Stencil::point().max_extent(), 0);
  EXPECT_TRUE(Stencil::point().is_point());
  const Stencil& s5 = Stencil::star5();
  EXPECT_EQ(s5.xlo(), -1);
  EXPECT_EQ(s5.xhi(), 1);
  EXPECT_EQ(s5.ylo(), -1);
  EXPECT_EQ(s5.yhi(), 1);
  const Stencil s2 = Stencil::star(2);
  EXPECT_EQ(s2.max_extent(), 2);
  EXPECT_EQ(s2.points().size(), 9u);
}

TEST(Range, IntersectAndCells) {
  const Range a{0, 10, 0, 5};
  const Range b{5, 20, 2, 9};
  const Range c = a.intersect(b);
  EXPECT_EQ(c.x0, 5);
  EXPECT_EQ(c.x1, 10);
  EXPECT_EQ(c.y0, 2);
  EXPECT_EQ(c.y1, 5);
  EXPECT_EQ(c.cells(), 15);
  EXPECT_TRUE((Range{3, 3, 0, 4}).empty());
}

TEST(Dat, PaddedStorageAndHaloAccess) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 8, 6);
  ops::Dat& d = ctx.decl_dat(block, "f", 2);
  EXPECT_EQ(d.local_nx(), 8);
  EXPECT_EQ(d.padded_nx(), 12);
  d.at(-2, -2) = 1.5;
  d.at(9, 7) = 2.5;
  EXPECT_DOUBLE_EQ(d.at(-2, -2), 1.5);
  EXPECT_DOUBLE_EQ(d.at(9, 7), 2.5);
}

TEST(ParLoop, WritesRange) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 6, 4);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  ops::par_loop(
      ctx, "fill", Range{1, 5, 1, 3}, 0,
      [](Acc a) { a(0, 0) = 7.0; }, arg_dat(d, AccessMode::kWrite));
  EXPECT_DOUBLE_EQ(d.at(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(d.at(4, 2), 7.0);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);  // outside range untouched
  EXPECT_DOUBLE_EQ(d.at(5, 3), 0.0);
}

TEST(ParLoop, StencilReadsNeighbours) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 5, 5);
  ops::Dat& src = ctx.decl_dat(block, "src", 1);
  ops::Dat& dst = ctx.decl_dat(block, "dst", 1);
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 5; ++i) src.at(i, j) = i + 10 * j;
  }
  src.set_halo_dirty(true);
  ops::par_loop(
      ctx, "blur", Range{1, 4, 1, 4}, 4,
      [](Acc in, Acc out) {
        out(0, 0) = in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1);
      },
      arg_dat(src, AccessMode::kRead, Stencil::star5()),
      arg_dat(dst, AccessMode::kWrite));
  // (2,2): (1+20)+(3+20)+(2+10)+(2+30) = 88
  EXPECT_DOUBLE_EQ(dst.at(2, 2), 88.0);
}

TEST(ParLoop, GlobalReductionSumAndMax) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 10, 10);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  for (int j = 0; j < 10; ++j) {
    for (int i = 0; i < 10; ++i) d.at(i, j) = i + j;
  }
  double sum = 0.0, mx = 0.0;
  ops::par_loop(
      ctx, "reduce", Range{0, 10, 0, 10}, 2,
      [](Acc a, double& s, double& m) {
        s += a(0, 0);
        if (a(0, 0) > m) m = a(0, 0);
      },
      arg_dat(d, AccessMode::kRead), arg_gbl(sum),
      arg_gbl(mx, ops::ReduceOp::kMax));
  EXPECT_DOUBLE_EQ(sum, 900.0);  // sum over i+j for 10x10
  EXPECT_DOUBLE_EQ(mx, 18.0);
}

TEST(ParLoop, ThreadedMatchesSequential) {
  const auto run = [](bool pooled) {
    ContextOptions o;
    o.use_pool = pooled;
    Context ctx(o);
    ops::Block& block = ctx.decl_block("b", 64, 64);
    ops::Dat& d = ctx.decl_dat(block, "f", 1);
    ops::par_loop(
        ctx, "init", Range{0, 64, 0, 64}, 1,
        [](Acc a) { a(0, 0) = 1.0; }, arg_dat(d, AccessMode::kWrite));
    double sum = 0.0;
    ops::par_loop(
        ctx, "sum", Range{0, 64, 0, 64}, 1,
        [](Acc a, double& s) { s += a(0, 0); }, arg_dat(d, AccessMode::kRead),
        arg_gbl(sum));
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(Halo, ReflectiveBoundaryFills) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 4, 4);
  ops::Dat& d = ctx.decl_dat(block, "f", 2);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) d.at(i, j) = 1.0 + i + 10 * j;
  }
  ctx.update_halo({&d}, 2);
  EXPECT_DOUBLE_EQ(d.at(-1, 0), d.at(0, 0));
  EXPECT_DOUBLE_EQ(d.at(-2, 2), d.at(1, 2));
  EXPECT_DOUBLE_EQ(d.at(4, 1), d.at(3, 1));
  EXPECT_DOUBLE_EQ(d.at(2, -1), d.at(2, 0));
  EXPECT_DOUBLE_EQ(d.at(2, 5), d.at(2, 2));
  // Corner: mirrored through both passes.
  EXPECT_DOUBLE_EQ(d.at(-1, -1), d.at(0, 0));
  EXPECT_FALSE(d.halo_dirty());
}

TEST(Halo, UpdateDepthBeyondHaloThrows) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 4, 4);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  EXPECT_THROW(ctx.update_halo({&d}, 2), tl::Error);
}

TEST(Halo, DirtyBitAutoExchangeBeforeStencilRead) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 4, 4);
  ops::Dat& src = ctx.decl_dat(block, "src", 1);
  ops::Dat& dst = ctx.decl_dat(block, "dst", 1);
  ops::par_loop(
      ctx, "init", Range{0, 4, 0, 4}, 0, [](Acc a) { a(0, 0) = 3.0; },
      arg_dat(src, AccessMode::kWrite));
  EXPECT_TRUE(src.halo_dirty());
  // Stencil read must self-heal the halo (reflection): edge cells see 3.0
  // neighbours, not stale zeros.
  ops::par_loop(
      ctx, "blur", Range{0, 4, 0, 4}, 4,
      [](Acc in, Acc out) {
        out(0, 0) = in(-1, 0) + in(1, 0) + in(0, -1) + in(0, 1);
      },
      arg_dat(src, AccessMode::kRead, Stencil::star5()),
      arg_dat(dst, AccessMode::kWrite));
  EXPECT_FALSE(src.halo_dirty());
  EXPECT_DOUBLE_EQ(dst.at(0, 0), 12.0);
}

// --- MPI decomposition --------------------------------------------------------

double checksum_distributed(int ranks, int nx, int ny) {
  double result = 0.0;
  std::mutex m;
  minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
    ContextOptions o;
    o.comm = &comm;
    Context ctx(o);
    ops::Block& block = ctx.decl_block("b", nx, ny);
    ops::Dat& u = ctx.decl_dat(block, "u", 2);
    ops::Dat& w = ctx.decl_dat(block, "w", 2);
    // Paint with global coordinates.
    for (int j = 0; j < u.local_ny(); ++j) {
      for (int i = 0; i < u.local_nx(); ++i) {
        u.at(i, j) = std::sin(0.1 * (u.local_x0() + i)) +
                     std::cos(0.2 * (u.local_y0() + j));
      }
    }
    u.set_halo_dirty(true);
    // Two stencil sweeps with an explicit halo update between them, then a
    // global checksum.
    for (int sweep = 0; sweep < 2; ++sweep) {
      ctx.update_halo({&u}, 1);
      ops::par_loop(
          ctx, "sweep", Range{0, nx, 0, ny}, 5,
          [](Acc in, Acc out) {
            out(0, 0) = 0.2 * (in(0, 0) + in(-1, 0) + in(1, 0) + in(0, -1) +
                               in(0, 1));
          },
          arg_dat(u, AccessMode::kRead, Stencil::star5()),
          arg_dat(w, AccessMode::kWrite));
      ops::par_loop(
          ctx, "copy", Range{0, nx, 0, ny}, 0,
          [](Acc in, Acc out) { out(0, 0) = in(0, 0); },
          arg_dat(w, AccessMode::kRead), arg_dat(u, AccessMode::kWrite));
    }
    double sum = 0.0;
    ops::par_loop(
        ctx, "checksum", Range{0, nx, 0, ny}, 1,
        [](Acc a, double& s) { s += a(0, 0); }, arg_dat(u, AccessMode::kRead),
        arg_gbl(sum));
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(m);
      result = sum;
    }
  });
  return result;
}

class OpsMpiTest : public ::testing::TestWithParam<int> {};

TEST_P(OpsMpiTest, DecomposedStencilMatchesSequential) {
  const double seq = checksum_distributed(1, 33, 17);
  const double par = checksum_distributed(GetParam(), 33, 17);
  EXPECT_NEAR(par, seq, 1e-10 * std::fabs(seq));
}

INSTANTIATE_TEST_SUITE_P(Ranks, OpsMpiTest, ::testing::Values(2, 3, 4, 6));

TEST(OpsMpi, PartitionCoversBlock) {
  minimpi::run_world(6, [](minimpi::Comm& comm) {
    ContextOptions o;
    o.comm = &comm;
    Context ctx(o);
    ops::Block& block = ctx.decl_block("b", 20, 11);
    const auto part = ctx.partition_of(block);
    EXPECT_GT(part.nx, 0);
    EXPECT_GT(part.ny, 0);
    const long local = static_cast<long>(part.nx) * part.ny;
    const long total = comm.allreduce(local, minimpi::ReduceOp::kSum);
    EXPECT_EQ(total, 220);
  });
}

TEST(OpsMpi, ClipToLocalHandlesPhysicalHalo) {
  minimpi::run_world(2, [](minimpi::Comm& comm) {
    ContextOptions o;
    o.comm = &comm;
    Context ctx(o);
    ops::Block& block = ctx.decl_block("b", 10, 10);
    ops::Dat& d = ctx.decl_dat(block, "f", 2);
    // A range spilling into the global halo: only boundary ranks own the
    // spill, and interior edges do not double-execute.
    const ops::Range global{-2, 12, 0, 10};
    const ops::Range local = ctx.clip_to_local(global, d);
    long cells = local.cells();
    cells = comm.allreduce(cells, minimpi::ReduceOp::kSum);
    EXPECT_EQ(cells, 14L * 10L);
  });
}

// --- device context -------------------------------------------------------------

TEST(OpsDevice, LoopsRunOnDeviceWithCoherence) {
  ContextOptions o;
  o.device = &simgpu::default_device();
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 16, 16);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  ops::par_loop(
      ctx, "fill", Range{0, 16, 0, 16}, 0, [](Acc a) { a(0, 0) = 2.5; },
      arg_dat(d, AccessMode::kWrite));
  EXPECT_TRUE(d.host_stale());
  ctx.fetch_to_host(d);
  EXPECT_FALSE(d.host_stale());
  EXPECT_DOUBLE_EQ(d.at(7, 7), 2.5);
}

TEST(OpsDevice, ReductionOnDevice) {
  ContextOptions o;
  o.device = &simgpu::default_device();
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 32, 32);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  ops::par_loop(
      ctx, "fill", Range{0, 32, 0, 32}, 0, [](Acc a) { a(0, 0) = 1.0; },
      arg_dat(d, AccessMode::kWrite));
  double sum = 0.0;
  ops::par_loop(
      ctx, "sum", Range{0, 32, 0, 32}, 1,
      [](Acc a, double& s) { s += a(0, 0); }, arg_dat(d, AccessMode::kRead),
      arg_gbl(sum));
  EXPECT_DOUBLE_EQ(sum, 1024.0);
}

TEST(OpsDevice, HaloReflectOnDevice) {
  ContextOptions o;
  o.device = &simgpu::default_device();
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 8, 8);
  ops::Dat& d = ctx.decl_dat(block, "f", 2);
  ops::par_loop(
      ctx, "fill", Range{0, 8, 0, 8}, 0, [](Acc a) { a(0, 0) = 4.0; },
      arg_dat(d, AccessMode::kWrite));
  ctx.update_halo({&d}, 2);
  ctx.fetch_to_host(d);
  EXPECT_DOUBLE_EQ(d.at(-1, 3), 4.0);
  EXPECT_DOUBLE_EQ(d.at(8, 3), 4.0);
  EXPECT_DOUBLE_EQ(d.at(3, -2), 4.0);
}

TEST(Context, RejectsDeviceWithComm) {
  minimpi::run_world(2, [](minimpi::Comm& comm) {
    ContextOptions o;
    o.comm = &comm;
    o.device = &simgpu::default_device();
    EXPECT_THROW(Context ctx(o), tl::Error);
  });
}

TEST(Context, LoopsExecutedCounter) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 4, 4);
  ops::Dat& d = ctx.decl_dat(block, "f", 1);
  ops::par_loop(
      ctx, "a", Range{0, 4, 0, 4}, 0, [](Acc x) { x(0, 0) = 1; },
      arg_dat(d, AccessMode::kWrite));
  ops::par_loop(
      ctx, "b", Range{0, 4, 0, 4}, 0, [](Acc x) { x(0, 0) = 2; },
      arg_dat(d, AccessMode::kWrite));
  EXPECT_EQ(ctx.loops_executed(), 2);
}

}  // namespace
