// Golden numerics regression suite: freezes outer/inner iteration counts,
// final residuals and the conserved temperature sum for every solver on every
// shipped deck, against baselines committed below.  Any kernel, threading or
// summation-order change that shifts the numerics beyond the tight tolerances
// here is a regression (or a deliberate re-baseline, which must be explained
// in the commit that regenerates the table).
//
// The baselines are produced by this binary itself:
//
//   TEA_GOLDEN_REGEN=1 ./test_golden --gtest_filter=Golden/GoldenCaseTest.*
//
// prints the kGolden table in C++ source form; paste it over the table below.
// Regeneration uses the identical configuration code as the checks, so the
// frozen numbers can never drift from the harness that produced them.
//
// All cases run the "serial" backend: a fixed thread count (one) gives a
// fixed reduction order, which is what makes iteration counts exactly
// reproducible across machines with the same FP semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/config.hpp"
#include "core/registry.hpp"

namespace {

namespace fs = std::filesystem;

fs::path decks_dir() {
  for (fs::path p :
       {fs::path(TEA_SOURCE_DIR) / "examples" / "decks",
        fs::path("examples/decks"), fs::path("../examples/decks")}) {
    if (fs::exists(p)) return p;
  }
  return {};
}

struct GoldenCase {
  const char* deck;     // deck file stem under examples/decks
  const char* solver;   // jacobi | cg | chebyshev | ppcg
  // Frozen configuration (what the case actually runs).
  int steps;
  double eps;
  int max_iters;
  // Frozen results.
  long outer;           // total outer solver iterations over all steps
  long inner;           // total PPCG/Chebyshev inner smoothing steps
  int converged;        // every step converged within max_iters
  double initial_rr;    // ||r0||^2 of the last step (pre-solve residual)
  double final_rr;      // squared residual at exit of the last step
  double temp;          // conserved temperature sum after the last step
};

// Tolerances.  Iteration counts and convergence flags match exactly — those
// are the hard freeze.  The value tolerances are set to what the solver
// semantics actually pin down: a solve only determines u to the eps * rr0
// convergence threshold, and the second step starts from the first step's
// approximate solution, so ULP-level kernel reordering (e.g. a vectorized
// reduction) legitimately moves multi-step quantities at the ~sqrt(eps)
// scale.  Real kernel bugs (a wrong stencil coefficient, a dropped row)
// move them at O(1).
constexpr double kTempRelTol = 1.0e-8;        // conserved temperature sum
constexpr double kInitialRrRelTol = 1.0e-5;   // last step's pre-solve ||r0||^2
// Non-converged (fixed-budget) exit residuals are deterministic functions of
// the sweep count and stay within a tight relative band; converged exits sit
// wherever the crossing iteration landed below threshold, so they are only
// frozen to the threshold bound plus an order-of-magnitude band.
constexpr double kResidualRelTol = 0.05;
constexpr double kConvergedResidualFactor = 100.0;

// --- golden table (regenerate with TEA_GOLDEN_REGEN=1; see header) ---------
const GoldenCase kGolden[] = {
    {"tea_bm_1", "jacobi", 2, 1e-08, 10000, 40, 0, 1, 2.1970051763123695, 8.052395531229528e-11, 50.799836060755332},
    {"tea_bm_1", "cg", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_1", "chebyshev", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_1", "ppcg", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_2", "jacobi", 2, 1e-08, 3000, 4960, 0, 0, 1428.5531288027255, 0.0013578804916679144, 50.656260034885662},
    {"tea_bm_2", "cg", 2, 1e-15, 10000, 403, 0, 1, 1420.8754789213099, 5.3323236446699087e-14, 50.799999999993958},
    {"tea_bm_2", "chebyshev", 2, 1e-15, 10000, 1040, 0, 1, 1420.8756528365275, 1.1094112256508305e-12, 50.799999999996629},
    {"tea_bm_2", "ppcg", 2, 1e-15, 10000, 108, 480, 1, 1420.876166499173, 1.0532763366711251e-12, 50.799999999999287},
    {"tea_ppcg_precon", "jacobi", 2, 1e-08, 1500, 2660, 0, 0, 2691.7432889310262, 0.00057268383531003755, 50.631534082387446},
    {"tea_ppcg_precon", "cg", 2, 1e-15, 10000, 216, 0, 1, 2684.9160564920371, 2.2956632549088913e-13, 50.605468848988686},
    {"tea_ppcg_precon", "chebyshev", 2, 1e-15, 10000, 530, 0, 1, 2684.9214647319477, 2.0593590748564124e-12, 50.605468749996923},
    {"tea_ppcg_precon", "ppcg", 2, 1e-15, 10000, 85, 300, 1, 2684.9214189447671, 5.807431139679888e-13, 50.605468749989079},
    {"tea_circle", "jacobi", 2, 1e-08, 5000, 720, 0, 1, 367.22860065030875, 2.4610657544086058e-06, 50.343732314606399},
    {"tea_circle", "cg", 2, 1e-15, 10000, 181, 0, 1, 367.16140375728367, 2.8128974615539236e-13, 50.362304687500206},
    {"tea_circle", "chebyshev", 2, 1e-15, 10000, 250, 0, 1, 367.16140423771196, 6.3770200504114725e-14, 50.362304687500128},
    {"tea_circle", "ppcg", 2, 1e-15, 10000, 75, 150, 1, 367.16140931503429, 4.4635083342082244e-14, 50.362304687499901},
    {"tea_point", "jacobi", 2, 1e-08, 5000, 760, 0, 1, 147552.80825374014, 0.0013870812292620198, 10.754613166112724},
    {"tea_point", "cg", 2, 1e-15, 10000, 157, 0, 1, 147529.49137058519, 1.3665519599067753e-10, 10.765380859375083},
    {"tea_point", "chebyshev", 2, 1e-15, 10000, 210, 0, 1, 147529.49163809954, 6.5643832969024181e-11, 10.765380859375146},
    {"tea_point", "ppcg", 2, 1e-15, 10000, 72, 120, 1, 147529.51544457252, 6.1273370210655517e-12, 10.765380859375096},
    {"tea_bm_16", "jacobi", 2, 1e-08, 2500, 3200, 0, 1, 839.14690849678493, 8.3858320217280649e-06, 50.722851222260488},
    {"tea_bm_16", "cg", 2, 1e-15, 10000, 258, 0, 1, 837.05066270059547, 4.9558774574495861e-14, 50.799999999997866},
    {"tea_bm_16", "chebyshev", 2, 1e-15, 10000, 530, 0, 1, 837.05068129327435, 4.1250666551601559e-13, 50.800000000000111},
    {"tea_bm_16", "ppcg", 2, 1e-15, 10000, 89, 290, 1, 837.05048595589858, 5.4605763613168802e-13, 50.80000000000382},
    {"tea_aniso", "jacobi", 2, 1e-08, 2500, 1040, 0, 1, 588.74461594459137, 4.2588144198220316e-06, 202.99936808947947},
    {"tea_aniso", "cg", 2, 1e-15, 10000, 194, 0, 1, 588.03727305152609, 2.1417698897505651e-15, 203.20000000000491},
    {"tea_aniso", "chebyshev", 2, 1e-15, 10000, 350, 0, 1, 588.03727772083573, 1.2704834796071399e-13, 203.19999999999916},
    {"tea_aniso", "ppcg", 2, 1e-15, 10000, 80, 200, 1, 588.0371949489703, 4.0998982689510916e-13, 203.19999999999297},
};
// --- end golden table -------------------------------------------------------

tl::SolverKind solver_kind(const std::string& name) {
  if (name == "jacobi") return tl::SolverKind::kJacobi;
  if (name == "cg") return tl::SolverKind::kCg;
  if (name == "chebyshev") return tl::SolverKind::kCheby;
  return tl::SolverKind::kPpcg;
}

/// The frozen run configuration of one case: deck settings with the solver
/// overridden and budgets clamped so the slow cross-solver combinations stay
/// inside the ctest timeout.  This function IS the golden contract — any
/// change to it requires regenerating the table.
tl::ProblemConfig golden_config(const GoldenCase& c) {
  const fs::path deck = decks_dir() / (std::string(c.deck) + ".in");
  tl::ProblemConfig p = tl::Config::load(deck.string()).problem();
  p.solver = solver_kind(c.solver);
  p.end_step = c.steps;
  p.eps = c.eps;
  p.max_iters = c.max_iters;
  return p;
}

/// Budgets used both by the checks and by regeneration.  Jacobi converges
/// linearly, so it gets a relaxed tolerance and a mesh-dependent sweep cap
/// (the 250^2/512^2 caps deliberately freeze a non-converged state: the gate
/// then also pins the exact residual a fixed sweep budget reaches).
void clamp_budgets(const std::string& deck, const std::string& solver,
                   int deck_steps, double deck_eps, int* steps, double* eps,
                   int* max_iters) {
  *steps = std::min(deck_steps, 2);
  *eps = deck_eps;
  *max_iters = 10000;
  if (solver == "jacobi") {
    *eps = std::max(deck_eps, 1e-8);
    if (deck == "tea_bm_2") *max_iters = 3000;
    else if (deck == "tea_ppcg_precon") *max_iters = 1500;
    else if (deck == "tea_bm_16" || deck == "tea_aniso") *max_iters = 2500;
    else if (deck != "tea_bm_1") *max_iters = 5000;
  }
}

struct GoldenResult {
  long outer = 0;
  long inner = 0;
  bool converged = false;
  double initial_rr = 0.0;
  double final_rr = 0.0;
  double temp = 0.0;
};

GoldenResult run_case(const GoldenCase& c) {
  const tea::RunResult run = tea::run_simulation("serial", golden_config(c));
  GoldenResult g;
  g.outer = run.total_iterations;
  for (const tea::StepResult& s : run.steps) g.inner += s.solve.inner_iterations;
  g.converged = run.all_converged();
  g.initial_rr = run.steps.back().solve.initial_rr;
  g.final_rr = run.steps.back().solve.final_rr;
  g.temp = run.final_summary.temp;
  return g;
}

bool regen_mode() { return std::getenv("TEA_GOLDEN_REGEN") != nullptr; }

class GoldenCaseTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenCaseTest, MatchesCommittedBaseline) {
  const GoldenCase c = GetParam();
  ASSERT_FALSE(decks_dir().empty());

  // Sanity: the frozen budgets in the table must equal what clamp_budgets
  // derives, so a budget-rule edit cannot silently invalidate the table.
  int steps, max_iters;
  double eps;
  {
    const fs::path deck = decks_dir() / (std::string(c.deck) + ".in");
    const tl::ProblemConfig p = tl::Config::load(deck.string()).problem();
    clamp_budgets(c.deck, c.solver, p.end_step, p.eps, &steps, &eps,
                  &max_iters);
  }
  ASSERT_EQ(steps, c.steps) << "budget rule drifted; regenerate the table";
  ASSERT_EQ(eps, c.eps) << "budget rule drifted; regenerate the table";
  ASSERT_EQ(max_iters, c.max_iters) << "budget rule drifted; regenerate";

  const GoldenResult g = run_case(c);

  if (regen_mode()) {
    std::printf(
        "    {\"%s\", \"%s\", %d, %g, %d, %ld, %ld, %d, %.17g, %.17g, "
        "%.17g},\n",
        c.deck, c.solver, c.steps, c.eps, c.max_iters, g.outer, g.inner,
        g.converged ? 1 : 0, g.initial_rr, g.final_rr, g.temp);
    return;
  }

  EXPECT_EQ(g.outer, c.outer) << c.deck << "/" << c.solver;
  EXPECT_EQ(g.inner, c.inner) << c.deck << "/" << c.solver;
  EXPECT_EQ(g.converged, c.converged != 0) << c.deck << "/" << c.solver;
  EXPECT_NEAR(g.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << c.deck << "/" << c.solver;
  EXPECT_NEAR(g.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << c.deck << "/" << c.solver;
  if (c.converged != 0) {
    // The solver contract: the exit residual crossed the threshold at the
    // frozen iteration.  Freeze the bound exactly and the landing value to
    // within a two-sided order-of-magnitude band.
    EXPECT_LE(g.final_rr, c.eps * g.initial_rr * (1.0 + 1e-6))
        << c.deck << "/" << c.solver;
    if (c.final_rr > 0.0) {
      EXPECT_LE(g.final_rr, c.final_rr * kConvergedResidualFactor +
                                1.0e-6 * c.eps * c.initial_rr)
          << c.deck << "/" << c.solver;
      EXPECT_GE(g.final_rr, c.final_rr / kConvergedResidualFactor -
                                1.0e-6 * c.eps * c.initial_rr)
          << c.deck << "/" << c.solver;
    }
  } else {
    EXPECT_NEAR(g.final_rr, c.final_rr,
                kResidualRelTol * std::fabs(c.final_rr))
        << c.deck << "/" << c.solver;
  }
}

std::string case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(info.param.deck) + "_" + info.param.solver;
}

INSTANTIATE_TEST_SUITE_P(Golden, GoldenCaseTest, ::testing::ValuesIn(kGolden),
                         case_name);

// --- threaded determinism ----------------------------------------------------
//
// The PR 3 determinism contract: every reduction sums rows through the fixed
// four-lane scheme (ref::row_reduce4) and thread partials combine in thread
// order, so the threaded manual host backend must walk the *same* iteration
// trajectory as the serial reference — same outer/inner counts, same
// convergence flags, same conserved temperature — at any thread count.
class ThreadedGoldenCaseTest
    : public ::testing::TestWithParam<std::tuple<GoldenCase, int>> {};

TEST_P(ThreadedGoldenCaseTest, MatchesSerialGoldenTable) {
  const GoldenCase c = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  ASSERT_FALSE(decks_dir().empty());

  tea::RunOptions options;
  options.threads = threads;
  const tea::RunResult run =
      tea::run_simulation("manual-omp", golden_config(c), options);

  long inner = 0;
  for (const tea::StepResult& s : run.steps) inner += s.solve.inner_iterations;
  EXPECT_EQ(run.total_iterations, c.outer)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_EQ(inner, c.inner)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_EQ(run.all_converged(), c.converged != 0)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_NEAR(run.final_summary.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_NEAR(run.steps.back().solve.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << c.deck << "/" << c.solver << " @" << threads << " threads";
}

std::string threaded_case_name(
    const ::testing::TestParamInfo<std::tuple<GoldenCase, int>>& info) {
  const GoldenCase& c = std::get<0>(info.param);
  return std::string(c.deck) + "_" + c.solver + "_t" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(GoldenThreads, ThreadedGoldenCaseTest,
                         ::testing::Combine(::testing::ValuesIn(kGolden),
                                            ::testing::Values(2, 4)),
                         threaded_case_name);

// The table must cover the full deck x solver matrix the suite advertises.
TEST(GoldenTable, CoversAllDecksAndSolvers) {
  const char* decks[] = {"tea_bm_1", "tea_bm_2", "tea_bm_16", "tea_aniso",
                         "tea_ppcg_precon", "tea_circle", "tea_point"};
  const char* solvers[] = {"jacobi", "cg", "chebyshev", "ppcg"};
  for (const char* d : decks) {
    for (const char* s : solvers) {
      bool found = false;
      for (const GoldenCase& c : kGolden) {
        if (std::string(c.deck) == d && std::string(c.solver) == s) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << d << "/" << s << " missing from golden table";
    }
  }
}

}  // namespace
