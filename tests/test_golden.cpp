// Golden numerics regression suite: freezes outer/inner iteration counts,
// final residuals and the conserved temperature sum for every solver on every
// shipped deck, against baselines committed in golden_cases.hpp (shared with
// the multi-rank suite).  Any kernel, threading or
// summation-order change that shifts the numerics beyond the tight tolerances
// here is a regression (or a deliberate re-baseline, which must be explained
// in the commit that regenerates the table).
//
// The baselines are produced by this binary itself:
//
//   TEA_GOLDEN_REGEN=1 ./test_golden --gtest_filter=Golden/GoldenCaseTest.*
//
// prints the kGolden table in C++ source form; paste it over the table in
// golden_cases.hpp.
// Regeneration uses the identical configuration code as the checks, so the
// frozen numbers can never drift from the harness that produced them.
//
// All cases run the "serial" backend: a fixed thread count (one) gives a
// fixed reduction order, which is what makes iteration counts exactly
// reproducible across machines with the same FP semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "golden_cases.hpp"

namespace {

using golden::GoldenCase;
using golden::clamp_budgets;
using golden::decks_dir;
using golden::golden_config;
using golden::kConvergedResidualFactor;
using golden::kGolden;
using golden::kInitialRrRelTol;
using golden::kResidualRelTol;
using golden::kTempRelTol;

namespace fs = std::filesystem;

struct GoldenResult {
  long outer = 0;
  long inner = 0;
  bool converged = false;
  double initial_rr = 0.0;
  double final_rr = 0.0;
  double temp = 0.0;
};

GoldenResult run_case(const GoldenCase& c) {
  const tea::RunResult run = tea::run_simulation("serial", golden_config(c));
  GoldenResult g;
  g.outer = run.total_iterations;
  for (const tea::StepResult& s : run.steps) g.inner += s.solve.inner_iterations;
  g.converged = run.all_converged();
  g.initial_rr = run.steps.back().solve.initial_rr;
  g.final_rr = run.steps.back().solve.final_rr;
  g.temp = run.final_summary.temp;
  return g;
}

bool regen_mode() { return std::getenv("TEA_GOLDEN_REGEN") != nullptr; }

class GoldenCaseTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenCaseTest, MatchesCommittedBaseline) {
  const GoldenCase c = GetParam();
  ASSERT_FALSE(decks_dir().empty());

  // Sanity: the frozen budgets in the table must equal what clamp_budgets
  // derives, so a budget-rule edit cannot silently invalidate the table.
  int steps, max_iters;
  double eps;
  {
    const fs::path deck = decks_dir() / (std::string(c.deck) + ".in");
    const tl::ProblemConfig p = tl::Config::load(deck.string()).problem();
    clamp_budgets(c.deck, c.solver, p.end_step, p.eps, &steps, &eps,
                  &max_iters);
  }
  ASSERT_EQ(steps, c.steps) << "budget rule drifted; regenerate the table";
  ASSERT_EQ(eps, c.eps) << "budget rule drifted; regenerate the table";
  ASSERT_EQ(max_iters, c.max_iters) << "budget rule drifted; regenerate";

  const GoldenResult g = run_case(c);

  if (regen_mode()) {
    std::printf(
        "    {\"%s\", \"%s\", %d, %g, %d, %ld, %ld, %d, %.17g, %.17g, "
        "%.17g},\n",
        c.deck, c.solver, c.steps, c.eps, c.max_iters, g.outer, g.inner,
        g.converged ? 1 : 0, g.initial_rr, g.final_rr, g.temp);
    return;
  }

  EXPECT_EQ(g.outer, c.outer) << c.deck << "/" << c.solver;
  EXPECT_EQ(g.inner, c.inner) << c.deck << "/" << c.solver;
  EXPECT_EQ(g.converged, c.converged != 0) << c.deck << "/" << c.solver;
  EXPECT_NEAR(g.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << c.deck << "/" << c.solver;
  EXPECT_NEAR(g.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << c.deck << "/" << c.solver;
  if (c.converged != 0) {
    // The solver contract: the exit residual crossed the threshold at the
    // frozen iteration.  Freeze the bound exactly and the landing value to
    // within a two-sided order-of-magnitude band.
    EXPECT_LE(g.final_rr, c.eps * g.initial_rr * (1.0 + 1e-6))
        << c.deck << "/" << c.solver;
    if (c.final_rr > 0.0) {
      EXPECT_LE(g.final_rr, c.final_rr * kConvergedResidualFactor +
                                1.0e-6 * c.eps * c.initial_rr)
          << c.deck << "/" << c.solver;
      EXPECT_GE(g.final_rr, c.final_rr / kConvergedResidualFactor -
                                1.0e-6 * c.eps * c.initial_rr)
          << c.deck << "/" << c.solver;
    }
  } else {
    EXPECT_NEAR(g.final_rr, c.final_rr,
                kResidualRelTol * std::fabs(c.final_rr))
        << c.deck << "/" << c.solver;
  }
}

std::string case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(info.param.deck) + "_" + info.param.solver;
}

INSTANTIATE_TEST_SUITE_P(Golden, GoldenCaseTest, ::testing::ValuesIn(kGolden),
                         case_name);

// --- threaded determinism ----------------------------------------------------
//
// The PR 3 determinism contract: every reduction sums rows through the fixed
// four-lane scheme (ref::row_reduce4) and thread partials combine in thread
// order, so the threaded manual host backend must walk the *same* iteration
// trajectory as the serial reference — same outer/inner counts, same
// convergence flags, same conserved temperature — at any thread count.
class ThreadedGoldenCaseTest
    : public ::testing::TestWithParam<std::tuple<GoldenCase, int>> {};

TEST_P(ThreadedGoldenCaseTest, MatchesSerialGoldenTable) {
  const GoldenCase c = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  ASSERT_FALSE(decks_dir().empty());

  tea::RunOptions options;
  options.threads = threads;
  const tea::RunResult run =
      tea::run_simulation("manual-omp", golden_config(c), options);

  long inner = 0;
  for (const tea::StepResult& s : run.steps) inner += s.solve.inner_iterations;
  EXPECT_EQ(run.total_iterations, c.outer)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_EQ(inner, c.inner)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_EQ(run.all_converged(), c.converged != 0)
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_NEAR(run.final_summary.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << c.deck << "/" << c.solver << " @" << threads << " threads";
  EXPECT_NEAR(run.steps.back().solve.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << c.deck << "/" << c.solver << " @" << threads << " threads";
}

std::string threaded_case_name(
    const ::testing::TestParamInfo<std::tuple<GoldenCase, int>>& info) {
  const GoldenCase& c = std::get<0>(info.param);
  return std::string(c.deck) + "_" + c.solver + "_t" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(GoldenThreads, ThreadedGoldenCaseTest,
                         ::testing::Combine(::testing::ValuesIn(kGolden),
                                            ::testing::Values(2, 4)),
                         threaded_case_name);

// The table must cover the full deck x solver matrix the suite advertises.
TEST(GoldenTable, CoversAllDecksAndSolvers) {
  const char* decks[] = {"tea_bm_1", "tea_bm_2", "tea_bm_16", "tea_aniso",
                         "tea_ppcg_precon", "tea_circle", "tea_point"};
  const char* solvers[] = {"jacobi", "cg", "chebyshev", "ppcg"};
  for (const char* d : decks) {
    for (const char* s : solvers) {
      bool found = false;
      for (const GoldenCase& c : kGolden) {
        if (std::string(c.deck) == d && std::string(c.solver) == s) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << d << "/" << s << " missing from golden table";
    }
  }
}

}  // namespace
