// Unit tests for miniraja: forall across policies, nested kernels, and the
// portable reducer objects.
#include <gtest/gtest.h>

#include <vector>

#include "miniraja/miniraja.hpp"
#include "simgpu/device.hpp"

namespace {

template <typename Policy>
class PolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<raja::seq_exec, raja::omp_parallel_for_exec,
                                  raja::simgpu_exec>;
TYPED_TEST_SUITE(PolicyTest, Policies);

TYPED_TEST(PolicyTest, ForallCoversSegment) {
  std::vector<std::atomic<int>> hits(500);
  raja::forall<TypeParam>(raja::RangeSegment(100, 500), [&](long i) {
    ASSERT_GE(i, 100);
    ASSERT_LT(i, 500);
    hits[static_cast<std::size_t>(i)]++;
  });
  for (long i = 0; i < 100; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 0);
  for (long i = 100; i < 500; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TYPED_TEST(PolicyTest, Kernel2DNestedCoverage) {
  std::vector<std::atomic<int>> hits(12 * 9);
  raja::kernel_2d<TypeParam>(raja::RangeSegment(0, 9), raja::RangeSegment(0, 12),
                             [&](long j, long i) {
                               hits[static_cast<std::size_t>(j * 12 + i)]++;
                             });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TYPED_TEST(PolicyTest, ReduceSumInLoop) {
  raja::ReduceSum<double> sum(10.0);  // initial value participates
  raja::forall<TypeParam>(raja::RangeSegment(0, 1000),
                          [=](long i) { sum += static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(sum.get(), 10.0 + 1000.0 * 999.0 / 2.0);
}

TYPED_TEST(PolicyTest, ReduceMinMax) {
  std::vector<double> values(777);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 37) % 1000) - 500.0;
  }
  raja::ReduceMin<double> mn(1e30);
  raja::ReduceMax<double> mx(-1e30);
  const double* p = values.data();
  raja::forall<TypeParam>(raja::RangeSegment(0, 777), [=](long i) {
    mn.min(p[i]);
    mx.max(p[i]);
  });
  double expect_min = 1e30, expect_max = -1e30;
  for (const double v : values) {
    expect_min = std::min(expect_min, v);
    expect_max = std::max(expect_max, v);
  }
  EXPECT_DOUBLE_EQ(mn.get(), expect_min);
  EXPECT_DOUBLE_EQ(mx.get(), expect_max);
}

TYPED_TEST(PolicyTest, MultipleReducersInOneLoop) {
  raja::ReduceSum<double> even(0.0), odd(0.0);
  raja::forall<TypeParam>(raja::RangeSegment(0, 100), [=](long i) {
    if (i % 2 == 0) {
      even += 1.0;
    } else {
      odd += 1.0;
    }
  });
  EXPECT_DOUBLE_EQ(even.get(), 50.0);
  EXPECT_DOUBLE_EQ(odd.get(), 50.0);
}

TEST(RangeSegment, Accessors) {
  const raja::RangeSegment seg(3, 11);
  EXPECT_EQ(seg.begin(), 3);
  EXPECT_EQ(seg.end(), 11);
  EXPECT_EQ(seg.size(), 8);
}

TEST(Reducer, ImplicitConversionToValue) {
  raja::ReduceSum<double> sum(0.0);
  raja::forall<raja::seq_exec>(raja::RangeSegment(0, 10),
                               [=](long) { sum += 2.0; });
  const double v = sum;
  EXPECT_DOUBLE_EQ(v, 20.0);
}

TEST(Reducer, IndependentInstancesDoNotInterfere) {
  raja::ReduceSum<double> a(0.0);
  {
    raja::ReduceSum<double> b(0.0);
    raja::forall<raja::omp_parallel_for_exec>(raja::RangeSegment(0, 64),
                                              [=](long) {
                                                a += 1.0;
                                                b += 2.0;
                                              });
    EXPECT_DOUBLE_EQ(b.get(), 128.0);
  }
  EXPECT_DOUBLE_EQ(a.get(), 64.0);
}

TEST(Forall, DeviceWritesDeviceMemory) {
  simgpu::Device& dev = simgpu::default_device();
  double* d = static_cast<double*>(dev.allocate(100 * sizeof(double)));
  raja::forall<raja::simgpu_exec>(raja::RangeSegment(0, 100), [=](long i) {
    d[i] = static_cast<double>(i) * 1.5;
  });
  std::vector<double> host(100);
  dev.memcpy_d2h(host.data(), d, 100 * sizeof(double));
  EXPECT_DOUBLE_EQ(host[40], 60.0);
  dev.deallocate(d);
}

}  // namespace
