// Tests for the machine-model validation & calibration subsystem
// (src/validation): the store -> paper join, the Fig. 1/2 and Table III
// shape metrics on a tiny CI-sized sweep, the deterministic least-squares
// calibration round-trip, report determinism (same store -> bit-identical
// JSON and markdown), and the baseline regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ppmetric/report.hpp"
#include "results/json.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "validation/calibrate.hpp"
#include "validation/validation.hpp"

namespace {

// --- shape-claim evaluation -------------------------------------------------

ppm::VariantResult vr(const std::string& variant, const std::string& machine,
                      double seconds) {
  return ppm::VariantResult{variant, machine, seconds, 0.0, 0.0, 0.0, 0.0};
}

TEST(ShapeClaims, PassFailAndApplicability) {
  // The 1000^2 CPU claim: raja-omp must beat kokkos-omp on the Xeon.
  std::vector<ppm::VariantResult> results = {vr("raja-omp", "xeon", 1.0),
                                             vr("kokkos-omp", "xeon", 2.0)};
  auto checks = validation::evaluate_shape_claims(results, 1000);
  ASSERT_FALSE(checks.empty());
  int applicable = 0;
  for (const auto& c : checks) {
    if (!c.applicable) continue;
    ++applicable;
    EXPECT_TRUE(c.pass) << c.id;
    EXPECT_DOUBLE_EQ(c.lhs, 1.0);
    EXPECT_DOUBLE_EQ(c.rhs, 2.0);
  }
  EXPECT_EQ(applicable, 1);  // the GPU claims have no operands here

  // Invert the ordering: same claim must now fail.
  results[0].time_s = 3.0;
  checks = validation::evaluate_shape_claims(results, 1000);
  for (const auto& c : checks) {
    if (c.applicable) EXPECT_FALSE(c.pass) << c.id;
  }

  // Claims carry stable ids (the baseline gate joins on them).
  bool found = false;
  for (const auto& c : checks) {
    if (c.id == "claim/1000/xeon/raja-omp<kokkos-omp") found = true;
  }
  EXPECT_TRUE(found);
}

// --- the tiny-mesh sweep join ----------------------------------------------

class ValidationSweepTest : public ::testing::Test {
protected:
  static constexpr int kMesh = 32;
  static constexpr int kSteps = 2;

  static void SetUpTestSuite() {
    store_ = new results::ResultStore();
    results::SweepConfig config = results::default_sweep(kMesh, kSteps, 1);
    results::run_sweep(*store_, config);
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }

  static validation::ValidationOptions options() {
    validation::ValidationOptions o;
    o.mesh = kMesh;
    o.steps = kSteps;
    return o;
  }

  static results::ResultStore* store_;
};

results::ResultStore* ValidationSweepTest::store_ = nullptr;

TEST_F(ValidationSweepTest, JoinFindsEveryMatrixRow) {
  const validation::ValidationReport report =
      validation::validate(*store_, options());
  EXPECT_EQ(report.rows_joined, 16);
  EXPECT_TRUE(report.missing_variants.empty());
  // Both figures project every supported variant x machine pair.
  EXPECT_FALSE(report.fig1.projected.empty());
  EXPECT_FALSE(report.fig2.projected.empty());
  EXPECT_EQ(report.fig1.projected.size(), report.fig2.projected.size());
}

TEST_F(ValidationSweepTest, ShapeChecksHoldOnTinyMeshes) {
  const validation::ValidationReport report =
      validation::validate(*store_, options());
  // Every §IV claim is applicable from a full sweep, and the paper's shape
  // survives projection from a 32^2 host measurement.
  EXPECT_GT(report.checked(), 30);
  EXPECT_EQ(report.failed(), 0) << validation::report_markdown(report);
  EXPECT_TRUE(report.ok());

  // The §V-B Table III conclusions.
  EXPECT_TRUE(report.table3.comparison.ordering_ok);
  EXPECT_TRUE(report.table3.comparison.memory_bound);
  EXPECT_DOUBLE_EQ(report.table3.rank_agreement_tau, 1.0);
  EXPECT_LT(report.table3.comparison.worst_delta, 10.0);  // points

  // The §IV-C crossover: near parity at 1000^2, wide gap at 4000^2.
  EXPECT_GT(report.fig2.gap_percent, report.fig1.gap_percent);
  EXPECT_GT(report.fig2.gap_percent, 10.0);
}

TEST_F(ValidationSweepTest, ErrorBandsJoinThePaperNumbers) {
  const validation::ValidationReport report =
      validation::validate(*store_, options());
  // Table III bands: one per framework per P(app) column.
  int table3_bands = 0;
  const validation::ErrorBand* knl_quote = nullptr;
  const validation::ErrorBand* xeon_quote = nullptr;
  for (const validation::ErrorBand& b : report.bands) {
    EXPECT_TRUE(std::isfinite(b.rel_error)) << b.name;
    if (b.name.rfind("table3/", 0) == 0) ++table3_bands;
    if (b.name == "quoted/kokkos-omp/knl") knl_quote = &b;
    if (b.name == "quoted/kokkos-omp/xeon") xeon_quote = &b;
  }
  EXPECT_EQ(table3_bands, 8);
  // §IV-B quotes Kokkos OpenMP at 11.02 s on the KNL at 1000^2; the
  // projection must land within +-25%.
  ASSERT_NE(knl_quote, nullptr);
  EXPECT_NEAR(knl_quote->ours, knl_quote->paper,
              0.25 * knl_quote->paper);
  // The Xeon quote (4.49 s) is structurally out of reach: honouring both
  // the [T3] 64.1% bandwidth anchor and the §IV-B raja<kokkos ordering
  // floors the projection at ~3.4x the quote (see efficiency.cpp).  The
  // PR 5 launch-multiplier recalibration pinned the band at ~+240% (a 48^2
  // source sweep) / ~+260% (this 32^2 one — the measured traffic mix moves
  // it a little); gate it so the known overshoot cannot silently widen.
  ASSERT_NE(xeon_quote, nullptr);
  EXPECT_GT(xeon_quote->rel_error, 0.0);      // it is an overshoot
  EXPECT_LE(xeon_quote->rel_error, 2.65);     // and it stays recalibrated
}

TEST_F(ValidationSweepTest, ReportIsBitIdenticalForTheSameStore) {
  const validation::ValidationReport a =
      validation::validate(*store_, options());
  const validation::ValidationReport b =
      validation::validate(*store_, options());
  EXPECT_EQ(validation::report_json(a).dump(2),
            validation::report_json(b).dump(2));
  EXPECT_EQ(validation::report_markdown(a), validation::report_markdown(b));
  // Calibration constants are part of that guarantee, bit for bit.
  EXPECT_EQ(a.calibration.seconds_per_gb, b.calibration.seconds_per_gb);
  EXPECT_EQ(a.calibration.launch_overhead_us, b.calibration.launch_overhead_us);
}

TEST_F(ValidationSweepTest, ReportJsonRoundTripsItsSchema) {
  const validation::ValidationReport report =
      validation::validate(*store_, options());
  const results::Json j =
      results::Json::parse(validation::report_json(report).dump(2));
  EXPECT_EQ(j.get_int("schema_version", 0), 1);
  EXPECT_EQ(j.get_int("rows_joined", 0), 16);
  ASSERT_NE(j.get("figures"), nullptr);
  ASSERT_EQ(j.get("figures")->items().size(), 2u);
  EXPECT_EQ(j.get("figures")->items()[0].get_int("mesh", 0), 1000);
  EXPECT_EQ(j.get("figures")->items()[1].get_int("mesh", 0), 4000);
  ASSERT_NE(j.get("table3"), nullptr);
  EXPECT_EQ(j.get("table3")->get("frameworks")->items().size(), 4u);
  ASSERT_NE(j.get("summary"), nullptr);
  EXPECT_TRUE(j.get("summary")->get("ok")->as_bool());
  ASSERT_NE(j.get("calibration"), nullptr);
}

TEST_F(ValidationSweepTest, BaselineGateDetectsRegressions) {
  const validation::ValidationReport report =
      validation::validate(*store_, options());
  const results::Json current = validation::report_json(report);

  // A report gated against itself: nothing regressed, plenty compared.
  validation::BaselineDiff self =
      validation::compare_to_baseline(current, current);
  EXPECT_TRUE(self.ok());
  EXPECT_GE(self.compared, report.checked());
  EXPECT_TRUE(self.regressed.empty());

  // Flip one passing check in the current report: the gate must flag it.
  validation::ValidationReport broken = report;
  ASSERT_FALSE(broken.model_checks.empty());
  ASSERT_TRUE(broken.model_checks.back().pass);
  broken.model_checks.back().pass = false;
  const validation::BaselineDiff regressed = validation::compare_to_baseline(
      validation::report_json(broken), current);
  EXPECT_FALSE(regressed.ok());
  ASSERT_EQ(regressed.regressed.size(), 1u);
  EXPECT_EQ(regressed.regressed[0], broken.model_checks.back().id);

  // The reverse direction is an improvement, not a regression.
  const validation::BaselineDiff fixed = validation::compare_to_baseline(
      current, validation::report_json(broken));
  EXPECT_TRUE(fixed.ok());
  ASSERT_EQ(fixed.fixed.size(), 1u);
}

TEST(Validation, EmptyStoreYieldsNoChecks) {
  const results::ResultStore store;
  validation::ValidationOptions options;
  const validation::ValidationReport report =
      validation::validate(store, options);
  EXPECT_EQ(report.rows_joined, 0);
  EXPECT_EQ(report.checked(), 0);
  EXPECT_FALSE(report.ok());  // vacuous success is not success
  EXPECT_EQ(report.missing_variants.size(), 16u);
}

// --- calibration -------------------------------------------------------------

validation::CalibrationRow cal_row(double gb, double launches, double seconds) {
  validation::CalibrationRow r;
  r.label = "synthetic/serial";
  r.gigabytes = gb;
  r.launches = launches;
  r.seconds = seconds;
  return r;
}

TEST(Calibration, LeastSquaresRoundTripRecoversConstants) {
  // Synthesize observations from known constants: 80 GB/s attainable
  // bandwidth and 6 us per launch.
  const double a = 1.0 / 80.0;  // s/GB
  const double b = 6.0e-6;      // s/launch
  std::vector<validation::CalibrationRow> rows;
  for (const auto& [gb, launches] :
       std::vector<std::pair<double, double>>{
           {2.0, 50.0}, {0.5, 4000.0}, {0.05, 20.0}, {1.0, 12000.0}}) {
    rows.push_back(cal_row(gb, launches, a * gb + b * launches));
  }

  const validation::CalibrationFit fit = validation::fit_host_model(rows);
  ASSERT_TRUE(fit.ok) << fit.note;
  EXPECT_EQ(fit.rows_used, 4);
  EXPECT_NEAR(fit.fitted_bw_gbs, 80.0, 1e-6);
  EXPECT_NEAR(fit.launch_overhead_us, 6.0, 1e-6);
  EXPECT_LT(fit.max_rel_error, 1e-9);

  // Determinism: the identical input yields the identical fit, bit for bit.
  const validation::CalibrationFit again = validation::fit_host_model(rows);
  EXPECT_EQ(fit.seconds_per_gb, again.seconds_per_gb);
  EXPECT_EQ(fit.launch_overhead_s, again.launch_overhead_s);
  EXPECT_EQ(fit.rms_rel_error, again.rms_rel_error);
}

TEST(Calibration, DegenerateMixFallsBackToBandwidthOnly) {
  // Every observation has the same launches-per-GB mix: only the combined
  // streaming cost is observable.
  std::vector<validation::CalibrationRow> rows;
  for (const double scale : {1.0, 2.0, 4.0}) {
    rows.push_back(cal_row(scale, 100.0 * scale, scale * (1.0 / 50.0)));
  }
  const validation::CalibrationFit fit = validation::fit_host_model(rows);
  ASSERT_TRUE(fit.ok);
  EXPECT_NE(fit.note.find("launch term dropped"), std::string::npos)
      << fit.note;
  EXPECT_DOUBLE_EQ(fit.launch_overhead_us, 0.0);
  EXPECT_GT(fit.fitted_bw_gbs, 0.0);
}

TEST(Calibration, TooFewOrUnusableRowsFail) {
  EXPECT_FALSE(validation::fit_host_model({}).ok);
  EXPECT_FALSE(validation::fit_host_model({cal_row(1.0, 1.0, 0.01)}).ok);
  // A zero-time observation must fail loudly, not solve to NaN constants.
  const auto degenerate = validation::fit_host_model(
      {cal_row(1.0, 10.0, 0.0), cal_row(2.0, 20.0, 0.05)});
  EXPECT_FALSE(degenerate.ok);
  EXPECT_NE(degenerate.note.find("unusable observation"), std::string::npos);
}

TEST(Calibration, StoreRowsAreNormalizedPerExecutionUnit) {
  results::ResultStore store;

  // A whole-solve row: counters cover the run, timing is the run.
  results::ResultRow solve;
  solve.key = "k1";
  solve.variant = "serial";
  solve.platform = "host";
  solve.deck = "tea_bm_1";
  solve.timing = results::TimingStats::from_samples({0.5});
  solve.counters.bytes_read = 1'000'000'000;
  solve.counters.bytes_written = 1'000'000'000;
  solve.counters.kernel_launches = 300;
  store.put(solve);

  // A kernel row: counters cover `iterations` calls, timing is per call.
  results::ResultRow kernel;
  kernel.key = "k2";
  kernel.variant = "kernel-stencil/serial";
  kernel.platform = "host";
  kernel.deck = "kernel-stencil";
  kernel.iterations = 100;  // reps per timed sample
  kernel.timing = results::TimingStats::from_samples({0.001});
  kernel.counters.bytes_read = 400'000'000;  // 4 MB per call x 100 calls
  kernel.counters.kernel_launches = 100;     // one launch per call
  store.put(kernel);

  // A row from a variant outside the calibration set: ignored.
  results::ResultRow other = solve;
  other.key = "k3";
  other.variant = "kokkos-omp";
  store.put(other);

  // A row the tuner stored (deck label under kTuneDeckPrefix): ignored,
  // otherwise running `tune` would change every later fit on the store.
  results::ResultRow tuned = solve;
  tuned.key = "k4";
  tuned.deck = std::string(validation::kTuneDeckPrefix) + "tea_bm_1";
  store.put(tuned);

  const auto rows =
      validation::calibration_rows(store, {"serial", "manual-omp"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "tea_bm_1/serial");
  EXPECT_DOUBLE_EQ(rows[0].gigabytes, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].launches, 300.0);
  EXPECT_DOUBLE_EQ(rows[0].seconds, 0.5);
  EXPECT_EQ(rows[1].label, "kernel-stencil/kernel-stencil/serial");
  EXPECT_DOUBLE_EQ(rows[1].gigabytes, 0.004);  // per call
  EXPECT_DOUBLE_EQ(rows[1].launches, 1.0);
  EXPECT_DOUBLE_EQ(rows[1].seconds, 0.001);
}

}  // namespace
