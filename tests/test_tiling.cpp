// Property tests for the lazy cache-blocking tiling executor: exact-once
// coverage with dependency skew, equivalence of tiled vs untiled execution on
// random loop chains (including read-modify-write loops), and the
// DRAM-traffic accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "minimpi/comm.hpp"
#include "miniops/miniops.hpp"

namespace {

using ops::Acc;
using ops::AccessMode;
using ops::arg_dat;
using ops::arg_gbl;
using ops::Context;
using ops::ContextOptions;
using ops::Range;
using ops::Stencil;

/// Run a randomized chain of loops (axpy-like RMW, stencil blur, copies) on
/// fields of an nx-by-ny block, and return a checksum.  `tiled` toggles the
/// lazy executor; `tile_rows` forces small tiles so skew logic is exercised.
double run_random_chain(bool tiled, int tile_rows, std::uint64_t seed, int nx,
                        int ny, int chain_len) {
  ContextOptions o;
  o.tiled = tiled;
  o.tile.tile_rows = tile_rows;
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", nx, ny);
  constexpr int kFields = 4;
  std::vector<ops::Dat*> f;
  for (int k = 0; k < kFields; ++k) {
    f.push_back(&ctx.decl_dat(block, "f" + std::to_string(k), 2));
  }
  // Deterministic init.
  for (int k = 0; k < kFields; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        f[static_cast<std::size_t>(k)]->at(i, j) =
            std::sin(0.1 * i + 0.2 * j + k);
      }
    }
    f[static_cast<std::size_t>(k)]->set_halo_dirty(true);
  }
  ctx.update_halo({f[0], f[1], f[2], f[3]}, 2);

  tl::Rng rng(seed);
  const Range interior{0, nx, 0, ny};
  for (int step = 0; step < chain_len; ++step) {
    const int kind = static_cast<int>(rng.next_below(3));
    const auto a = static_cast<std::size_t>(rng.next_below(kFields));
    auto b = static_cast<std::size_t>(rng.next_below(kFields));
    if (b == a) b = (b + 1) % kFields;
    switch (kind) {
      case 0: {  // RMW axpy: fb += 0.5 * fa
        ops::par_loop(
            ctx, "axpy", interior, 2,
            [](Acc x, Acc y) { y(0, 0) += 0.5 * x(0, 0); },
            arg_dat(*f[a], AccessMode::kRead),
            arg_dat(*f[b], AccessMode::kReadWrite));
        break;
      }
      case 1: {  // copy
        ops::par_loop(
            ctx, "copy", interior, 0,
            [](Acc x, Acc y) { y(0, 0) = x(0, 0); },
            arg_dat(*f[a], AccessMode::kRead),
            arg_dat(*f[b], AccessMode::kWrite));
        break;
      }
      default: {  // stencil blur (forces halo maintenance / skew)
        ops::par_loop(
            ctx, "blur", interior, 5,
            [](Acc x, Acc y) {
              y(0, 0) = 0.2 * (x(0, 0) + x(-1, 0) + x(1, 0) + x(0, -1) +
                               x(0, 1));
            },
            arg_dat(*f[a], AccessMode::kRead, Stencil::star5()),
            arg_dat(*f[b], AccessMode::kWrite));
        break;
      }
    }
  }
  ctx.flush();

  double sum = 0.0;
  for (int k = 0; k < kFields; ++k) {
    double s = 0.0;
    ops::par_loop(
        ctx, "sum", interior, 1, [](Acc x, double& acc) { acc += x(0, 0); },
        arg_dat(*f[static_cast<std::size_t>(k)], AccessMode::kRead),
        arg_gbl(s));
    sum += s * (k + 1);
  }
  return sum;
}

class TiledChainEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TiledChainEquivalence, TiledMatchesUntiled) {
  const auto [seed, tile_rows] = GetParam();
  const double flat = run_random_chain(false, 0, seed, 37, 29, 12);
  const double tiled = run_random_chain(true, tile_rows, seed, 37, 29, 12);
  EXPECT_NEAR(tiled, flat, 1e-9 * std::max(1.0, std::fabs(flat)));
}

INSTANTIATE_TEST_SUITE_P(
    Chains, TiledChainEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 1234u),
                       ::testing::Values(4, 8, 64)));

TEST(TiledExecution, LongPointwiseChainStaysQueued) {
  ContextOptions o;
  o.tiled = true;
  o.tile.tile_rows = 8;
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 16, 64);
  ops::Dat& a = ctx.decl_dat(block, "a", 2);
  ops::Dat& b = ctx.decl_dat(block, "b", 2);
  const Range interior{0, 16, 0, 64};
  for (int k = 0; k < 6; ++k) {
    ops::par_loop(
        ctx, "axpy", interior, 2,
        [](Acc x, Acc y) { y(0, 0) += 0.25 * x(0, 0) + 1.0; },
        arg_dat(a, AccessMode::kRead), arg_dat(b, AccessMode::kReadWrite));
  }
  // Nothing ran yet: the chain is queued.
  EXPECT_EQ(ctx.loops_executed(), 0);
  ctx.flush();
  EXPECT_EQ(ctx.loops_executed(), 6);
  EXPECT_EQ(ctx.flushes(), 1);
  EXPECT_DOUBLE_EQ(b.at(3, 3), 6.0);
}

TEST(TiledExecution, ReductionForcesFlush) {
  ContextOptions o;
  o.tiled = true;
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 8, 8);
  ops::Dat& a = ctx.decl_dat(block, "a", 1);
  ops::par_loop(
      ctx, "fill", Range{0, 8, 0, 8}, 0, [](Acc x) { x(0, 0) = 2.0; },
      arg_dat(a, AccessMode::kWrite));
  double sum = 0.0;
  ops::par_loop(
      ctx, "sum", Range{0, 8, 0, 8}, 1,
      [](Acc x, double& s) { s += x(0, 0); }, arg_dat(a, AccessMode::kRead),
      arg_gbl(sum));
  EXPECT_DOUBLE_EQ(sum, 128.0);  // implies the fill was flushed first
}

TEST(TiledExecution, MaxChainForcesFlush) {
  ContextOptions o;
  o.tiled = true;
  o.tile.max_chain = 4;
  Context ctx(o);
  ops::Block& block = ctx.decl_block("b", 8, 8);
  ops::Dat& a = ctx.decl_dat(block, "a", 1);
  for (int k = 0; k < 4; ++k) {
    ops::par_loop(
        ctx, "inc", Range{0, 8, 0, 8}, 1, [](Acc x) { x(0, 0) += 1.0; },
        arg_dat(a, AccessMode::kReadWrite));
  }
  EXPECT_GE(ctx.flushes(), 1);
  EXPECT_EQ(ctx.loops_executed(), 4);
}

// --- plan-level properties -----------------------------------------------------

std::vector<ops::LoopRecord> make_chain(ops::Dat& a, ops::Dat& b, int ny,
                                        int stencil_reach) {
  // loop0 writes a (point); loop1 reads a with +stencil_reach rows, writes b.
  std::vector<ops::LoopRecord> chain(2);
  chain[0].name = "w_a";
  chain[0].local_range = ops::Range{0, a.local_nx(), 0, ny};
  chain[0].flops_per_cell = 1;
  chain[0].dats.push_back({&a, AccessMode::kWrite, 0, 0, 0, 0});
  chain[1].name = "r_a_w_b";
  chain[1].local_range = ops::Range{0, a.local_nx(), 0, ny};
  chain[1].flops_per_cell = 1;
  chain[1].dats.push_back(
      {&a, AccessMode::kRead, -stencil_reach, stencil_reach, -1, 1});
  chain[1].dats.push_back({&b, AccessMode::kWrite, 0, 0, 0, 0});
  return chain;
}

TEST(TilePlan, PartitionsEveryLoopExactly) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 16, 100);
  ops::Dat& a = ctx.decl_dat(block, "a", 2);
  ops::Dat& b = ctx.decl_dat(block, "b", 2);
  const auto chain = make_chain(a, b, 100, 1);
  ops::TileConfig cfg;
  cfg.tile_rows = 16;
  const ops::TilePlan plan(chain, cfg, 16);
  for (std::size_t k = 0; k < chain.size(); ++k) {
    int covered = 0;
    int prev_end = 0;
    for (int t = 0; t < plan.num_tiles(); ++t) {
      const auto s = plan.slice(t, static_cast<int>(k));
      EXPECT_EQ(s.y_begin, prev_end);
      covered += s.y_end - s.y_begin;
      prev_end = s.y_end;
    }
    EXPECT_EQ(covered, 100);
  }
}

TEST(TilePlan, WriterSkewsAheadOfStencilReader) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 16, 100);
  ops::Dat& a = ctx.decl_dat(block, "a", 2);
  ops::Dat& b = ctx.decl_dat(block, "b", 2);
  for (const int reach : {1, 2}) {
    const auto chain = make_chain(a, b, 100, reach);
    ops::TileConfig cfg;
    cfg.tile_rows = 20;
    const ops::TilePlan plan(chain, cfg, 16);
    for (int t = 0; t + 1 < plan.num_tiles(); ++t) {
      const auto writer = plan.slice(t, 0);
      const auto reader = plan.slice(t, 1);
      // The writer must have produced every row the reader's stencil needs.
      EXPECT_GE(writer.y_end, reader.y_end + reach) << "tile " << t;
    }
  }
}

TEST(TilePlan, TiledTrafficBelowUntiled) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 64, 512);
  ops::Dat& a = ctx.decl_dat(block, "a", 2);
  ops::Dat& b = ctx.decl_dat(block, "b", 2);
  // Chain reusing the same two dats repeatedly: tiling should cut DRAM
  // traffic substantially.
  std::vector<ops::LoopRecord> chain;
  for (int k = 0; k < 8; ++k) {
    ops::LoopRecord l;
    l.name = "l" + std::to_string(k);
    l.local_range = ops::Range{0, 64, 0, 512};
    l.flops_per_cell = 2;
    l.dats.push_back({&a, AccessMode::kRead, 0, 0, 0, 0});
    l.dats.push_back({&b, AccessMode::kReadWrite, 0, 0, 0, 0});
    chain.push_back(std::move(l));
  }
  ops::TileConfig cfg;
  cfg.tile_rows = 32;
  const ops::TilePlan plan(chain, cfg, 64);
  const auto tiled = plan.traffic(chain);
  const auto flat = ops::untiled_traffic(chain);
  EXPECT_LT(tiled.bytes_read + tiled.bytes_written,
            flat.bytes_read + flat.bytes_written);
  const double reuse = plan.reuse_factor(chain);
  EXPECT_GT(reuse, 0.0);
  EXPECT_LT(reuse, 0.5);  // 8 loops over 2 dats: large reuse
  EXPECT_EQ(tiled.flops, flat.flops);  // tiling never changes flops
}

TEST(TilePlan, AutoTileRowsRespectsCacheBudget) {
  Context ctx;
  ops::Block& block = ctx.decl_block("b", 1024, 4096);
  ops::Dat& a = ctx.decl_dat(block, "a", 2);
  ops::Dat& b = ctx.decl_dat(block, "b", 2);
  const auto chain = make_chain(a, b, 4096, 1);
  ops::TileConfig cfg;  // auto rows
  cfg.cache_bytes = 1 << 20;
  const ops::TilePlan plan(chain, cfg, a.padded_nx());
  // 2 dats x padded_nx x 8B per row; budget 1 MiB with 2x slack.
  const std::size_t row_bytes = 2 * static_cast<std::size_t>(a.padded_nx()) * 8;
  EXPECT_LE(static_cast<std::size_t>(plan.tile_rows()) * row_bytes,
            cfg.cache_bytes);
  EXPECT_GE(plan.tile_rows(), 8);
}

TEST(TilePlan, MpiTiledMatchesSerialTeaLikeChain) {
  // Distributed + tiled context running a stencil/axpy mix must agree with
  // the sequential engine (this is the ops-tiled configuration).
  const auto run = [](int ranks, bool tiled) {
    double result = 0.0;
    std::mutex m;
    minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
      ContextOptions o;
      o.comm = &comm;
      o.tiled = tiled;
      o.tile.tile_rows = 8;
      Context ctx(o);
      ops::Block& block = ctx.decl_block("b", 40, 24);
      ops::Dat& u = ctx.decl_dat(block, "u", 2);
      ops::Dat& w = ctx.decl_dat(block, "w", 2);
      for (int j = 0; j < u.local_ny(); ++j) {
        for (int i = 0; i < u.local_nx(); ++i) {
          u.at(i, j) = 0.01 * (u.local_x0() + i) - 0.02 * (u.local_y0() + j);
        }
      }
      u.set_halo_dirty(true);
      const Range interior{0, 40, 0, 24};
      for (int it = 0; it < 3; ++it) {
        ctx.update_halo({&u}, 1);
        ops::par_loop(
            ctx, "blur", interior, 5,
            [](Acc x, Acc y) {
              y(0, 0) = x(0, 0) + 0.1 * (x(-1, 0) + x(1, 0) + x(0, -1) +
                                         x(0, 1) - 4.0 * x(0, 0));
            },
            arg_dat(u, AccessMode::kRead, Stencil::star5()),
            arg_dat(w, AccessMode::kWrite));
        ops::par_loop(
            ctx, "accum+copy", interior, 2,
            [](Acc x, Acc y) { y(0, 0) = 0.5 * y(0, 0) + 0.5 * x(0, 0); },
            arg_dat(w, AccessMode::kRead), arg_dat(u, AccessMode::kReadWrite));
      }
      double sum = 0.0;
      ops::par_loop(
          ctx, "sum", interior, 1, [](Acc x, double& s) { s += x(0, 0); },
          arg_dat(u, AccessMode::kRead), arg_gbl(sum));
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(m);
        result = sum;
      }
    });
    return result;
  };
  const double serial = run(1, false);
  EXPECT_NEAR(run(4, true), serial, 1e-10 * std::max(1.0, std::fabs(serial)));
  EXPECT_NEAR(run(3, true), serial, 1e-10 * std::max(1.0, std::fabs(serial)));
}

}  // namespace
