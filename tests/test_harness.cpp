// Tests for the bench harness itself: option handling, projection plumbing,
// figure-table construction and shape-claim evaluation on a real (small)
// variant sweep.  The harness is what turns instrumented runs into the
// paper-artefact tables, so it gets the same scrutiny as the library.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/harness.hpp"
#include "machine/efficiency.hpp"

namespace {

TEST(HarnessOptions, DefaultsAndEnvOverrides) {
  unsetenv("TEA_BENCH_FULL");
  unsetenv("TEA_BENCH_MESH");
  unsetenv("TEA_BENCH_STEPS");
  const auto d = bench::HarnessOptions::from_env(1000);
  EXPECT_EQ(d.paper_mesh, 1000);
  EXPECT_EQ(d.bench_mesh, 256);
  EXPECT_EQ(d.bench_steps, 5);
  EXPECT_EQ(d.paper_steps, 10);

  setenv("TEA_BENCH_MESH", "96", 1);
  setenv("TEA_BENCH_STEPS", "2", 1);
  const auto o = bench::HarnessOptions::from_env(4000);
  EXPECT_EQ(o.bench_mesh, 96);
  EXPECT_EQ(o.bench_steps, 2);
  EXPECT_EQ(o.paper_mesh, 4000);
  unsetenv("TEA_BENCH_MESH");
  unsetenv("TEA_BENCH_STEPS");

  setenv("TEA_BENCH_FULL", "1", 1);
  const auto f = bench::HarnessOptions::from_env(1000);
  EXPECT_EQ(f.bench_mesh, 1000);
  EXPECT_EQ(f.bench_steps, 10);
  unsetenv("TEA_BENCH_FULL");
}

TEST(HarnessVariants, PaperGroupings) {
  EXPECT_EQ(bench::cpu_variants().size(), 10u);
  EXPECT_EQ(bench::gpu_variants().size(), 6u);
  for (const auto& v : bench::cpu_variants()) {
    EXPECT_FALSE(machine::is_gpu_variant(v)) << v;
  }
  for (const auto& v : bench::gpu_variants()) {
    EXPECT_TRUE(machine::is_gpu_variant(v)) << v;
  }
}

class HarnessRunTest : public ::testing::Test {
protected:
  static const std::vector<bench::VariantTimes>& rows() {
    static const std::vector<bench::VariantTimes> r = [] {
      bench::HarnessOptions o;
      o.paper_mesh = 1000;
      o.bench_mesh = 64;
      o.bench_steps = 1;
      o.eps = 1e-10;
      o.ranks = 2;
      return bench::run_variants({"manual-omp", "kokkos-omp", "manual-mpi"},
                                 {"xeon", "knl"}, o);
    }();
    return r;
  }
};

TEST_F(HarnessRunTest, EveryVariantProjectedOnEveryMachine) {
  ASSERT_EQ(rows().size(), 3u);
  for (const auto& row : rows()) {
    EXPECT_GT(row.host_seconds, 0.0) << row.variant;
    ASSERT_EQ(row.machines.size(), 2u) << row.variant;
    for (const double s : row.seconds) EXPECT_GT(s, 0.0);
    for (const double bw : row.achieved_bw_gbs) EXPECT_GT(bw, 0.0);
  }
}

TEST_F(HarnessRunTest, IterationNormalisationSharesReference) {
  // All variants project the same iteration count (normalised to the first).
  const long ref = rows()[0].projected_iterations;
  for (const auto& row : rows()) {
    EXPECT_EQ(row.projected_iterations, ref) << row.variant;
  }
  // Scaling: 1 bench step of a 64^2 mesh projected to 10 steps of 1000^2
  // multiplies iterations by (1000/64)*(10/1) against the measured count.
  EXPECT_GT(ref, 100);
}

TEST_F(HarnessRunTest, LookupHelpers) {
  const double t = bench::time_of(rows(), "manual-omp", "xeon");
  EXPECT_GT(t, 0.0);
  EXPECT_LT(bench::time_of(rows(), "nonexistent", "xeon"), 0.0);
  EXPECT_LT(bench::time_of(rows(), "manual-omp", "p100"), 0.0);
  const double best = bench::best_time_on(rows(), "knl");
  for (const auto& row : rows()) {
    const double s = bench::time_of(rows(), row.variant, "knl");
    EXPECT_GE(s, best);
  }
}

TEST_F(HarnessRunTest, CalibratedOrderingHoldsAtSmallScale) {
  // Even from a tiny 64^2 probe the calibrated Kokkos-on-KNL collapse must
  // appear in the projections (the efficiency residual dominates).
  const double kokkos = bench::time_of(rows(), "kokkos-omp", "knl");
  const double manual = bench::time_of(rows(), "manual-omp", "knl");
  EXPECT_GT(kokkos, 2.0 * manual);
}

TEST(HarnessUnsupported, AccCpuSkipsKnl) {
  bench::HarnessOptions o;
  o.paper_mesh = 1000;
  o.bench_mesh = 48;
  o.bench_steps = 1;
  o.eps = 1e-8;
  const auto rows =
      bench::run_variants({"manual-acc-cpu"}, {"xeon", "knl"}, o);
  ASSERT_EQ(rows.size(), 1u);
  // PGI 17.3 could not target the KNL host: only the Xeon column exists.
  ASSERT_EQ(rows[0].machines.size(), 1u);
  EXPECT_EQ(rows[0].machines[0], "xeon");
}

}  // namespace
