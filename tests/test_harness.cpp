// Tests for the bench harness itself: option handling, projection plumbing,
// figure-table construction and shape-claim evaluation on a real (small)
// variant sweep.  The harness is what turns instrumented runs into the
// paper-artefact tables, so it gets the same scrutiny as the library.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "bench/harness.hpp"
#include "machine/efficiency.hpp"

namespace {

// The harness persists measurements through the shared result store; point
// it at a fresh file before the lazy store session is created so test runs
// are hermetic (no caching across ctest invocations).
const bool kStoreEnvReady = [] {
  setenv("TEA_RESULTS", "test_harness_results.json", 1);
  std::remove("test_harness_results.json");
  return true;
}();

TEST(HarnessOptions, DefaultsAndEnvOverrides) {
  unsetenv("TEA_BENCH_FULL");
  unsetenv("TEA_BENCH_MESH");
  unsetenv("TEA_BENCH_STEPS");
  unsetenv("TEA_BENCH_SAMPLES");
  const auto d = bench::HarnessOptions::from_env(1000);
  EXPECT_EQ(d.paper_mesh, 1000);
  EXPECT_EQ(d.bench_mesh, 256);
  EXPECT_EQ(d.bench_steps, 5);
  EXPECT_EQ(d.paper_steps, 10);
  EXPECT_EQ(d.samples, 3);

  setenv("TEA_BENCH_MESH", "96", 1);
  setenv("TEA_BENCH_STEPS", "2", 1);
  setenv("TEA_BENCH_SAMPLES", "5", 1);
  const auto o = bench::HarnessOptions::from_env(4000);
  EXPECT_EQ(o.bench_mesh, 96);
  EXPECT_EQ(o.bench_steps, 2);
  EXPECT_EQ(o.samples, 5);
  EXPECT_EQ(o.paper_mesh, 4000);
  unsetenv("TEA_BENCH_MESH");
  unsetenv("TEA_BENCH_STEPS");
  unsetenv("TEA_BENCH_SAMPLES");

  setenv("TEA_BENCH_FULL", "1", 1);
  const auto f = bench::HarnessOptions::from_env(1000);
  EXPECT_EQ(f.bench_mesh, 1000);
  EXPECT_EQ(f.bench_steps, 10);
  unsetenv("TEA_BENCH_FULL");
}

TEST(HarnessVariants, PaperGroupings) {
  EXPECT_EQ(bench::cpu_variants().size(), 10u);
  EXPECT_EQ(bench::gpu_variants().size(), 6u);
  for (const auto& v : bench::cpu_variants()) {
    EXPECT_FALSE(machine::is_gpu_variant(v)) << v;
  }
  for (const auto& v : bench::gpu_variants()) {
    EXPECT_TRUE(machine::is_gpu_variant(v)) << v;
  }
}

class HarnessRunTest : public ::testing::Test {
protected:
  static bench::HarnessOptions options() {
    bench::HarnessOptions o;
    o.paper_mesh = 1000;
    o.bench_mesh = 64;
    o.bench_steps = 1;
    o.eps = 1e-10;
    o.ranks = 2;
    o.samples = 2;
    return o;
  }

  static const std::vector<bench::VariantTimes>& rows() {
    static const std::vector<bench::VariantTimes> r =
        bench::run_variants({"manual-omp", "kokkos-omp", "manual-mpi"},
                            {"xeon", "knl"}, options());
    return r;
  }
};

TEST_F(HarnessRunTest, EveryVariantProjectedOnEveryMachine) {
  ASSERT_EQ(rows().size(), 3u);
  for (const auto& row : rows()) {
    EXPECT_GT(row.host_seconds, 0.0) << row.variant;
    ASSERT_EQ(row.machines.size(), 2u) << row.variant;
    for (const double s : row.seconds) EXPECT_GT(s, 0.0);
    for (const double bw : row.achieved_bw_gbs) EXPECT_GT(bw, 0.0);
  }
}

TEST_F(HarnessRunTest, SampleStatisticsArePopulated) {
  for (const auto& row : rows()) {
    ASSERT_EQ(row.timing.samples_s.size(), 2u) << row.variant;
    EXPECT_GT(row.timing.min_s, 0.0);
    EXPECT_GE(row.timing.median_s, row.timing.min_s);
    EXPECT_GE(row.timing.stddev_s, 0.0);
    EXPECT_DOUBLE_EQ(row.host_seconds, row.timing.median_s);
  }
}

TEST_F(HarnessRunTest, SecondSweepIsPureCacheQuery) {
  (void)rows();  // force the first (measuring) sweep
  const int misses_before = bench::shared_store().misses();
  const auto again = bench::run_variants(
      {"manual-omp", "kokkos-omp", "manual-mpi"}, {"xeon", "knl"}, options());
  EXPECT_EQ(bench::shared_store().misses(), misses_before)
      << "re-running the same sweep must not measure anything";
  ASSERT_EQ(again.size(), rows().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i].from_cache) << again[i].variant;
    EXPECT_DOUBLE_EQ(again[i].host_seconds, rows()[i].host_seconds);
    EXPECT_EQ(again[i].projected_iterations, rows()[i].projected_iterations);
  }
  // A different projection target reuses the same stored measurement.
  auto fig2 = options();
  fig2.paper_mesh = 4000;
  const auto reprojected = bench::run_variants({"manual-omp"}, {"knl"}, fig2);
  EXPECT_EQ(bench::shared_store().misses(), misses_before);
  ASSERT_EQ(reprojected.size(), 1u);
  EXPECT_TRUE(reprojected[0].from_cache);
}

TEST_F(HarnessRunTest, IterationNormalisationSharesReference) {
  // All variants project the same iteration count (normalised to the first).
  const long ref = rows()[0].projected_iterations;
  for (const auto& row : rows()) {
    EXPECT_EQ(row.projected_iterations, ref) << row.variant;
  }
  // Scaling: 1 bench step of a 64^2 mesh projected to 10 steps of 1000^2
  // multiplies iterations by (1000/64)*(10/1) against the measured count.
  EXPECT_GT(ref, 100);
}

TEST_F(HarnessRunTest, LookupHelpers) {
  const double t = bench::time_of(rows(), "manual-omp", "xeon");
  EXPECT_GT(t, 0.0);
  EXPECT_LT(bench::time_of(rows(), "nonexistent", "xeon"), 0.0);
  EXPECT_LT(bench::time_of(rows(), "manual-omp", "p100"), 0.0);
  const double best = bench::best_time_on(rows(), "knl");
  for (const auto& row : rows()) {
    const double s = bench::time_of(rows(), row.variant, "knl");
    EXPECT_GE(s, best);
  }
}

TEST_F(HarnessRunTest, CalibratedOrderingHoldsAtSmallScale) {
  // Even from a tiny 64^2 probe the calibrated Kokkos-on-KNL collapse must
  // appear in the projections (the efficiency residual dominates).
  const double kokkos = bench::time_of(rows(), "kokkos-omp", "knl");
  const double manual = bench::time_of(rows(), "manual-omp", "knl");
  EXPECT_GT(kokkos, 2.0 * manual);
}

TEST(HarnessUnsupported, AccCpuSkipsKnl) {
  bench::HarnessOptions o;
  o.paper_mesh = 1000;
  o.bench_mesh = 48;
  o.bench_steps = 1;
  o.eps = 1e-8;
  o.samples = 1;
  const auto rows =
      bench::run_variants({"manual-acc-cpu"}, {"xeon", "knl"}, o);
  ASSERT_EQ(rows.size(), 1u);
  // PGI 17.3 could not target the KNL host: only the Xeon column exists.
  ASSERT_EQ(rows[0].machines.size(), 1u);
  EXPECT_EQ(rows[0].machines[0], "xeon");
}

TEST(HarnessUnsupported, FigureTableHandlesRaggedMachineColumns) {
  bench::HarnessOptions o;
  o.paper_mesh = 1000;
  o.bench_mesh = 48;
  o.bench_steps = 1;
  o.eps = 1e-8;
  o.samples = 1;
  // First row supports only the Xeon; the second supports both machines and
  // must still land in the right columns (and not out-grow the header row).
  const auto rows = bench::run_variants({"manual-acc-cpu", "manual-omp"},
                                        {"xeon", "knl"}, o);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NO_THROW(bench::print_figure("ragged", rows, o));
}

}  // namespace
