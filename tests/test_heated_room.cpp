// Scenario test wiring the examples/heated_room configuration into ctest
// (ROADMAP "scenario diversity"): a room with a hot radiator, a cold window
// and a dense pillar, run for a few steps.  Asserts the physical properties
// the example only prints: energy conservation under the Neumann boundaries,
// the parabolic maximum principle (diffusion contracts the temperature
// range monotonically), and cross-backend agreement on the final state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/config.hpp"
#include "core/backends/manual_host.hpp"
#include "core/driver.hpp"
#include "core/registry.hpp"

namespace {

/// The heated-room scenario from examples/heated_room.cpp, scaled down so a
/// multi-step multi-backend run stays fast in ctest.
tl::ProblemConfig heated_room(int cells, int steps) {
  tl::ProblemConfig p;
  p.x_cells = cells;
  p.y_cells = cells;
  p.xmin = 0.0;
  p.xmax = 8.0;
  p.ymin = 0.0;
  p.ymax = 8.0;
  p.initial_timestep = 0.002;
  p.end_step = steps;
  p.eps = 1e-11;
  p.max_iters = 50000;
  p.solver = tl::SolverKind::kCg;

  tl::StateConfig air;
  air.index = 1;
  air.density = 1.2;
  air.energy = 2.0;
  p.states.push_back(air);

  tl::StateConfig radiator;  // hot strip along the left wall
  radiator.index = 2;
  radiator.density = 0.8;
  radiator.energy = 40.0;
  radiator.geometry = tl::Geometry::kRectangle;
  radiator.xmin = 0.0;
  radiator.xmax = 0.4;
  radiator.ymin = 1.0;
  radiator.ymax = 7.0;
  p.states.push_back(radiator);

  tl::StateConfig window;  // cold strip on the right wall
  window.index = 3;
  window.density = 1.5;
  window.energy = 0.2;
  window.geometry = tl::Geometry::kRectangle;
  window.xmin = 7.6;
  window.xmax = 8.0;
  window.ymin = 2.0;
  window.ymax = 6.0;
  p.states.push_back(window);

  tl::StateConfig pillar;  // dense concrete column in the middle
  pillar.index = 4;
  pillar.density = 2400.0;
  pillar.energy = 0.001;
  pillar.geometry = tl::Geometry::kCircle;
  pillar.cx = 4.0;
  pillar.cy = 4.0;
  pillar.radius = 0.6;
  p.states.push_back(pillar);
  return p;
}

TEST(HeatedRoom, ConvergesAndConservesEnergy) {
  const tea::RunResult run = tea::run_simulation("serial", heated_room(64, 6));
  ASSERT_EQ(run.steps.size(), 6u);
  ASSERT_TRUE(run.all_converged());

  // Neumann (reflective) boundaries: the volume-weighted temperature sum is
  // conserved across every step, not just end-to-end.
  const double first = run.steps.front().summary.temp;
  ASSERT_GT(first, 0.0);
  for (const tea::StepResult& s : run.steps) {
    EXPECT_NEAR(s.summary.temp, first, 1e-8 * first) << "step " << s.step;
  }
  // Mass and volume never change (no advection).
  for (const tea::StepResult& s : run.steps) {
    EXPECT_DOUBLE_EQ(s.summary.vol, run.steps.front().summary.vol);
    EXPECT_DOUBLE_EQ(s.summary.mass, run.steps.front().summary.mass);
  }
}

TEST(HeatedRoom, DiffusionIsMonotone) {
  // The maximum principle for the backward-Euler heat equation with Neumann
  // boundaries: the temperature range [min u, max u] contracts every step —
  // the hottest cell only cools, the coldest only warms.  Run the driver for
  // k = 1..5 steps from the same initial state and read the final field.
  const int cells = 48;
  std::vector<double> u(static_cast<std::size_t>(cells) * cells);

  double prev_min = 0.0, prev_max = 0.0;
  for (int steps = 1; steps <= 5; ++steps) {
    tea::ManualHostBackend backend("serial", nullptr, nullptr);
    const tea::TeaDriver driver(heated_room(cells, steps));
    const tea::RunResult run = driver.run(backend);
    ASSERT_TRUE(run.all_converged()) << steps << " steps";

    backend.read_field(tea::FieldId::kU, tl::span<double>(u));
    const auto [lo_it, hi_it] = std::minmax_element(u.begin(), u.end());
    const double lo = *lo_it;
    const double hi = *hi_it;
    EXPECT_GT(lo, 0.0);
    // Bounded by the painted extremes: radiator u = 40.0 * 0.8, pillar
    // u = 0.001 * 2400.0 = 2.4, window u = 0.2 * 1.5 = 0.3.
    EXPECT_LE(hi, 40.0 * 0.8 * (1.0 + 1e-9));
    EXPECT_GE(lo, 0.2 * 1.5 * (1.0 - 1e-9));

    if (steps > 1) {
      EXPECT_LE(hi, prev_max * (1.0 + 1e-9)) << "max grew at step " << steps;
      EXPECT_GE(lo, prev_min * (1.0 - 1e-9)) << "min fell at step " << steps;
      EXPECT_LT(hi - lo, prev_max - prev_min) << "range did not contract";
    }
    prev_min = lo;
    prev_max = hi;
  }
}

TEST(HeatedRoom, BackendsAgreeOnFinalState) {
  const tl::ProblemConfig cfg = heated_room(48, 3);
  const tea::RunResult ref = tea::run_simulation("serial", cfg);
  ASSERT_TRUE(ref.all_converged());
  for (const char* backend : {"manual-omp", "ops-omp"}) {
    const tea::RunResult run = tea::run_simulation(backend, cfg);
    ASSERT_TRUE(run.all_converged()) << backend;
    EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
                1e-8 * std::fabs(ref.final_summary.temp))
        << backend;
    EXPECT_NEAR(run.final_summary.ie, ref.final_summary.ie,
                1e-8 * std::fabs(ref.final_summary.ie))
        << backend;
  }
}

}  // namespace
