// Deck-level integration tests: the shipped input decks must parse to the
// expected configurations, and the runnable ones must execute end-to-end
// with conserved physics.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/config.hpp"
#include "core/registry.hpp"

namespace {

namespace fs = std::filesystem;

fs::path decks_dir() {
  // Tests run from the build tree; decks live in the source tree.
  for (fs::path p :
       {fs::path(TEA_SOURCE_DIR) / "examples" / "decks",
        fs::path("examples/decks"), fs::path("../examples/decks")}) {
    if (fs::exists(p)) return p;
  }
  return {};
}

TEST(Decks, AllShippedDecksParse) {
  const fs::path dir = decks_dir();
  ASSERT_FALSE(dir.empty()) << "decks directory not found";
  int parsed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".in") continue;
    EXPECT_NO_THROW({
      const tl::Config cfg = tl::Config::load(entry.path().string());
      EXPECT_GT(cfg.problem().x_cells, 0);
      EXPECT_FALSE(cfg.problem().states.empty());
    }) << entry.path();
    ++parsed;
  }
  EXPECT_GE(parsed, 4);
}

TEST(Decks, Bm1MatchesUpstreamShape) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_1.in").string());
  EXPECT_EQ(cfg.problem().x_cells, 10);
  EXPECT_EQ(cfg.problem().end_step, 2);
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kCg);
  EXPECT_DOUBLE_EQ(cfg.problem().eps, 1e-15);
  ASSERT_EQ(cfg.problem().states.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.problem().states[1].ymax, 2.0);
}

TEST(Decks, Bm5IsThePaperTable3Problem) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_5.in").string());
  EXPECT_EQ(cfg.problem().x_cells, 4000);
  EXPECT_EQ(cfg.problem().y_cells, 4000);
  EXPECT_EQ(cfg.problem().end_step, 10);
}

TEST(Decks, Bm1RunsEndToEnd) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_1.in").string());
  const auto run = tea::run_simulation("serial", cfg.problem());
  ASSERT_TRUE(run.all_converged());
  // Upstream bm_1 conserved quantities: mass = 20*0.1 + 80*100, ie likewise.
  EXPECT_NEAR(run.final_summary.mass, 8002.0, 1e-6);
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-9);
  EXPECT_NEAR(run.final_summary.ie, 50.8, 1e-3);
}

TEST(Decks, PpcgPreconDeckExercisesExtensions) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_ppcg_precon.in").string());
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kPpcg);
  EXPECT_EQ(cfg.problem().preconditioner, tl::PreconKind::kJacDiag);
  EXPECT_EQ(cfg.problem().coefficient, tl::CoefficientKind::kDensity);
  EXPECT_EQ(cfg.problem().ppcg_inner_steps, 12);
  // Run a shrunken version end-to-end on two backend families.
  auto p = cfg.problem();
  p.x_cells = 48;
  p.y_cells = 48;
  p.end_step = 1;
  const auto ref = tea::run_simulation("serial", p);
  const auto kk = tea::run_simulation("kokkos-omp", p);
  ASSERT_TRUE(ref.all_converged());
  ASSERT_TRUE(kk.all_converged());
  EXPECT_NEAR(kk.final_summary.temp, ref.final_summary.temp,
              1e-7 * std::fabs(ref.final_summary.temp));
}

}  // namespace
