// Deck-level integration tests: the shipped input decks must parse to the
// expected configurations, and the runnable ones must execute end-to-end
// with conserved physics.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "results/sweep.hpp"

namespace {

namespace fs = std::filesystem;

fs::path decks_dir() {
  // Tests run from the build tree; decks live in the source tree.
  for (fs::path p :
       {fs::path(TEA_SOURCE_DIR) / "examples" / "decks",
        fs::path("examples/decks"), fs::path("../examples/decks")}) {
    if (fs::exists(p)) return p;
  }
  return {};
}

TEST(Decks, AllShippedDecksParse) {
  const fs::path dir = decks_dir();
  ASSERT_FALSE(dir.empty()) << "decks directory not found";
  int parsed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".in") continue;
    EXPECT_NO_THROW({
      const tl::Config cfg = tl::Config::load(entry.path().string());
      EXPECT_GT(cfg.problem().x_cells, 0);
      EXPECT_FALSE(cfg.problem().states.empty());
    }) << entry.path();
    ++parsed;
  }
  EXPECT_GE(parsed, 8);
}

TEST(Decks, Bm1MatchesUpstreamShape) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_1.in").string());
  EXPECT_EQ(cfg.problem().x_cells, 10);
  EXPECT_EQ(cfg.problem().end_step, 2);
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kCg);
  EXPECT_DOUBLE_EQ(cfg.problem().eps, 1e-15);
  ASSERT_EQ(cfg.problem().states.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.problem().states[1].ymax, 2.0);
}

TEST(Decks, Bm5IsThePaperTable3Problem) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_5.in").string());
  EXPECT_EQ(cfg.problem().x_cells, 4000);
  EXPECT_EQ(cfg.problem().y_cells, 4000);
  EXPECT_EQ(cfg.problem().end_step, 10);
}

TEST(Decks, Bm1RunsEndToEnd) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_1.in").string());
  const auto run = tea::run_simulation("serial", cfg.problem());
  ASSERT_TRUE(run.all_converged());
  // Upstream bm_1 conserved quantities: mass = 20*0.1 + 80*100, ie likewise.
  EXPECT_NEAR(run.final_summary.mass, 8002.0, 1e-6);
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-9);
  EXPECT_NEAR(run.final_summary.ie, 50.8, 1e-3);
}

// Expected painted totals, replicating the cell-centre painting rule in
// src/core/problem.cpp: later states overwrite earlier ones where they cover
// a cell's centre.
struct PaintedTotals {
  double mass = 0.0;
  double ie = 0.0;
};

PaintedTotals expected_totals(const tl::ProblemConfig& p) {
  PaintedTotals t;
  const double dx = p.dx();
  const double dy = p.dy();
  for (int j = 0; j < p.y_cells; ++j) {
    for (int i = 0; i < p.x_cells; ++i) {
      const double cx = p.xmin + (i + 0.5) * dx;
      const double cy = p.ymin + (j + 0.5) * dy;
      double density = 0.0, energy = 0.0;
      for (const tl::StateConfig& st : p.states) {
        bool inside = st.index == 1;
        switch (st.geometry) {
          case tl::Geometry::kRectangle:
            if (st.index > 1) {
              inside = cx >= st.xmin && cx < st.xmax && cy >= st.ymin &&
                       cy < st.ymax;
            }
            break;
          case tl::Geometry::kCircle:
            inside = std::hypot(cx - st.cx, cy - st.cy) <= st.radius;
            break;
          case tl::Geometry::kPoint:
            inside = st.cx >= cx - 0.5 * dx && st.cx < cx + 0.5 * dx &&
                     st.cy >= cy - 0.5 * dy && st.cy < cy + 0.5 * dy;
            break;
        }
        if (inside) {
          density = st.density;
          energy = st.energy;
        }
      }
      t.mass += density * dx * dy;
      t.ie += density * energy * dx * dy;
    }
  }
  return t;
}

TEST(Decks, CircleDeckConservesPaintedQuantities) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_circle.in").string());
  EXPECT_EQ(cfg.problem().states[1].geometry, tl::Geometry::kCircle);
  EXPECT_DOUBLE_EQ(cfg.problem().states[1].radius, 2.5);

  const PaintedTotals expected = expected_totals(cfg.problem());
  const auto run = tea::run_simulation("serial", cfg.problem());
  ASSERT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-9);
  // Density is never modified, so mass must match the painted mass exactly;
  // internal energy is conserved by the reflective boundaries.
  EXPECT_NEAR(run.final_summary.mass, expected.mass, 1e-6 * expected.mass);
  EXPECT_NEAR(run.final_summary.ie, expected.ie, 1e-4 * expected.ie);
  // The circle must actually paint: a pure state-1 mesh would weigh
  // 100 * 100.0.
  EXPECT_LT(expected.mass, 100.0 * 100.0);

  // Cross-backend agreement on the same deck.
  const auto ops = tea::run_simulation("ops-omp", cfg.problem());
  ASSERT_TRUE(ops.all_converged());
  EXPECT_NEAR(ops.final_summary.temp, run.final_summary.temp,
              1e-7 * std::fabs(run.final_summary.temp));
}

TEST(Decks, PointDeckConservesPaintedQuantities) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_point.in").string());
  EXPECT_EQ(cfg.problem().states[1].geometry, tl::Geometry::kPoint);

  const tl::ProblemConfig& p = cfg.problem();
  const PaintedTotals expected = expected_totals(p);
  // Exactly one cell carries the point state: total mass differs from the
  // ambient mesh by (10.0 - 100.0) * cell volume.
  const double cell_vol = p.dx() * p.dy();
  EXPECT_NEAR(expected.mass, 100.0 * 100.0 + (10.0 - 100.0) * cell_vol, 1e-9);

  const auto run = tea::run_simulation("serial", p);
  ASSERT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-9);
  EXPECT_NEAR(run.final_summary.mass, expected.mass, 1e-6 * expected.mass);
  EXPECT_NEAR(run.final_summary.ie, expected.ie, 1e-4 * expected.ie);
}

TEST(Decks, Bm16IsTheLargerSolverMatrixDeck) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_bm_16.in").string());
  EXPECT_EQ(cfg.problem().x_cells, 160);
  EXPECT_EQ(cfg.problem().y_cells, 160);
  EXPECT_EQ(cfg.problem().end_step, 10);
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kCg);

  // Shrink the step count (not the mesh) and check conservation end-to-end.
  tl::ProblemConfig p = cfg.problem();
  p.end_step = 1;
  const PaintedTotals expected = expected_totals(p);
  const auto run = tea::run_simulation("serial", p);
  ASSERT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.vol, 100.0, 1e-9);
  EXPECT_NEAR(run.final_summary.mass, expected.mass, 1e-6 * expected.mass);
  EXPECT_NEAR(run.final_summary.ie, expected.ie, 1e-4 * expected.ie);
}

TEST(Decks, AnisoDeckHasAnAnisotropicOperator) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_aniso.in").string());
  const tl::ProblemConfig& p0 = cfg.problem();
  // Square cell counts over a 4:1 domain: dx = 4*dy, so rx/ry = 1/16 — the
  // discrete conduction operator is strongly anisotropic.
  EXPECT_EQ(p0.x_cells, p0.y_cells);
  EXPECT_NEAR(p0.dx() / p0.dy(), 4.0, 1e-12);

  tl::ProblemConfig p = p0;
  p.end_step = 1;
  const PaintedTotals expected = expected_totals(p);
  const auto run = tea::run_simulation("serial", p);
  ASSERT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.mass, expected.mass, 1e-6 * expected.mass);
  EXPECT_NEAR(run.final_summary.ie, expected.ie, 1e-4 * expected.ie);

  // Cross-backend agreement holds on the anisotropic operator too.
  const auto omp = tea::run_simulation("manual-omp", p);
  ASSERT_TRUE(omp.all_converged());
  EXPECT_NEAR(omp.final_summary.temp, run.final_summary.temp,
              1e-7 * std::fabs(run.final_summary.temp));
}

// --- parser robustness -------------------------------------------------------

/// Field-by-field equality of two parsed problems (the round-trip contract).
void expect_same_problem(const tl::ProblemConfig& a, const tl::ProblemConfig& b,
                         const std::string& context) {
  EXPECT_EQ(a.x_cells, b.x_cells) << context;
  EXPECT_EQ(a.y_cells, b.y_cells) << context;
  EXPECT_DOUBLE_EQ(a.xmin, b.xmin) << context;
  EXPECT_DOUBLE_EQ(a.xmax, b.xmax) << context;
  EXPECT_DOUBLE_EQ(a.ymin, b.ymin) << context;
  EXPECT_DOUBLE_EQ(a.ymax, b.ymax) << context;
  EXPECT_DOUBLE_EQ(a.initial_timestep, b.initial_timestep) << context;
  EXPECT_EQ(a.end_step, b.end_step) << context;
  EXPECT_EQ(a.solver, b.solver) << context;
  EXPECT_EQ(a.coefficient, b.coefficient) << context;
  EXPECT_EQ(a.preconditioner, b.preconditioner) << context;
  EXPECT_DOUBLE_EQ(a.eps, b.eps) << context;
  EXPECT_EQ(a.max_iters, b.max_iters) << context;
  EXPECT_EQ(a.ppcg_inner_steps, b.ppcg_inner_steps) << context;
  EXPECT_EQ(a.cheby_cg_presteps, b.cheby_cg_presteps) << context;
  EXPECT_EQ(a.check_result, b.check_result) << context;
  EXPECT_EQ(a.halo_depth, b.halo_depth) << context;
  ASSERT_EQ(a.states.size(), b.states.size()) << context;
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    const tl::StateConfig& sa = a.states[i];
    const tl::StateConfig& sb = b.states[i];
    EXPECT_EQ(sa.index, sb.index) << context;
    EXPECT_DOUBLE_EQ(sa.density, sb.density) << context;
    EXPECT_DOUBLE_EQ(sa.energy, sb.energy) << context;
    EXPECT_EQ(sa.geometry, sb.geometry) << context;
    EXPECT_DOUBLE_EQ(sa.xmin, sb.xmin) << context;
    EXPECT_DOUBLE_EQ(sa.xmax, sb.xmax) << context;
    EXPECT_DOUBLE_EQ(sa.ymin, sb.ymin) << context;
    EXPECT_DOUBLE_EQ(sa.ymax, sb.ymax) << context;
    EXPECT_DOUBLE_EQ(sa.cx, sb.cx) << context;
    EXPECT_DOUBLE_EQ(sa.cy, sb.cy) << context;
    EXPECT_DOUBLE_EQ(sa.radius, sb.radius) << context;
  }
}

TEST(Decks, AllShippedDecksRoundTripThroughToDeck) {
  // parse -> serialize -> parse is the identity on every typed field, for
  // every shipped deck (to_deck writes full precision and the complete
  // solver configuration, including preconditioner and inner-step counts).
  const fs::path dir = decks_dir();
  ASSERT_FALSE(dir.empty());
  int round_tripped = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".in") continue;
    const tl::Config first = tl::Config::load(entry.path().string());
    const std::string deck_text = tl::to_deck(first.problem());
    const tl::Config second = tl::Config::parse(deck_text);
    expect_same_problem(first.problem(), second.problem(),
                        entry.path().filename().string());
    // Serialization is a fixed point: one more lap changes nothing.
    EXPECT_EQ(tl::to_deck(second.problem()), deck_text) << entry.path();
    ++round_tripped;
  }
  EXPECT_GE(round_tripped, 8);
}

TEST(Decks, UnknownKeysAreRejectedEverywhere) {
  // Top-level directive.
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "warp_factor=9\n*endtea"),
               tl::ConfigError);
  // State attribute.
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1 "
                                 "viscosity=2\n*endtea"),
               tl::ConfigError);
  // Unknown geometry and preconditioner names.
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "state 2 density=1 energy=1 "
                                 "geometry=hexagon\n*endtea"),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "tl_preconditioner_type=ilu0\n*endtea"),
               tl::ConfigError);
  // Upstream-only keys stay accepted-and-ignored.
  EXPECT_NO_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                    "test_problem=5\nprofiler_on\n*endtea"));
}

TEST(Decks, MalformedValuesAreRejected) {
  const auto deck = [](const std::string& line) {
    return "*tea\nstate 1 density=1 energy=1\n" + line + "\n*endtea";
  };
  // Non-numeric and half-numeric values.
  EXPECT_THROW(tl::Config::parse(deck("x_cells=ten")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_eps=1.0e")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_eps=fast")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("end_step=2.5")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("check_result=maybe")), tl::ConfigError);
  // Doubled '=' and missing values.
  EXPECT_THROW(tl::Config::parse(deck("x_cells=4=5")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("x_cells")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_preconditioner_type")),
               tl::ConfigError);
  // Malformed state attributes.
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=abc energy=1\n*endtea"),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate one density=1 energy=1\n*endtea"),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density energy=1\n*endtea"),
               tl::ConfigError);
  // Semantic validation after a clean parse.
  EXPECT_THROW(tl::Config::parse(deck("x_cells=-4")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("halo_depth=0")), tl::ConfigError);
}

TEST(Decks, NonFiniteValuesAreRejected) {
  // strtod happily parses "nan" and "inf", and NaN then sails through every
  // ordered sanity check (all comparisons are false), so the parser must
  // reject non-finite values explicitly — at the line that names them, not
  // as a solver blow-up ten minutes later.
  const auto deck = [](const std::string& line) {
    return "*tea\nstate 1 density=1 energy=1\n" + line + "\n*endtea";
  };
  EXPECT_THROW(tl::Config::parse(deck("xmax=nan")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("ymax=inf")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("xmin=-inf")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("initial_timestep=nan")),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_eps=inf")), tl::ConfigError);
  EXPECT_THROW(
      tl::Config::parse("*tea\nstate 1 density=nan energy=1\n*endtea"),
      tl::ConfigError);
  EXPECT_THROW(
      tl::Config::parse("*tea\nstate 1 density=1 energy=inf\n*endtea"),
      tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "state 2 density=1 energy=1 geometry=circle "
                                 "xcentre=nan ycentre=5 radius=1\n*endtea"),
               tl::ConfigError);
}

TEST(Decks, UnphysicalValuesAreRejected) {
  const auto deck = [](const std::string& line) {
    return "*tea\nstate 1 density=1 energy=1\n" + line + "\n*endtea";
  };
  // Degenerate or inverted domain extents.
  EXPECT_THROW(tl::Config::parse(deck("xmin=10.0 xmax=10.0")),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("ymin=5.0 ymax=1.0")), tl::ConfigError);
  // Non-positive timestep, tolerance and iteration budgets.
  EXPECT_THROW(tl::Config::parse(deck("initial_timestep=0.0")),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("initial_timestep=-0.004")),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_eps=0.0")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_eps=-1e-10")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_max_iters=0")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("end_step=0")), tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_ppcg_inner_steps=0")),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse(deck("tl_cheby_cg_presteps=0")),
               tl::ConfigError);
  // Negative material energy.
  EXPECT_THROW(
      tl::Config::parse("*tea\nstate 1 density=1 energy=-1\n*endtea"),
      tl::ConfigError);
  // Zero-area painted regions: an empty rectangle, a zero-radius circle.
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "state 2 density=2 energy=2 "
                                 "geometry=rectangle xmin=1 xmax=1 ymin=0 "
                                 "ymax=2\n*endtea"),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "state 2 density=2 energy=2 "
                                 "geometry=rectangle xmin=0 xmax=2 ymin=3 "
                                 "ymax=1\n*endtea"),
               tl::ConfigError);
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "state 2 density=2 energy=2 geometry=circle "
                                 "xcentre=5 ycentre=5 radius=0\n*endtea"),
               tl::ConfigError);
  // The ambient state (index 1) covers everything and carries no geometry;
  // a point region has no area by construction.  Both stay accepted.
  EXPECT_NO_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                    "state 2 density=2 energy=2 "
                                    "geometry=point xcentre=5 ycentre=5\n"
                                    "*endtea"));
}

TEST(Decks, AnisoBenchProblemMatchesTheCommittedDeck) {
  // The figure benches cannot load deck files (no TEA_SOURCE_DIR), so the
  // anisotropic bench rows are built programmatically; this pins the two
  // constructions together so they cannot drift apart.
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_aniso.in").string());
  const tl::ProblemConfig& deck = cfg.problem();
  const tl::ProblemConfig built = results::aniso_bench_problem(
      deck.x_cells, deck.end_step, deck.eps);
  expect_same_problem(deck, built, "tea_aniso.in vs aniso_bench_problem");
}

TEST(Decks, PpcgPreconDeckExercisesExtensions) {
  const tl::Config cfg =
      tl::Config::load((decks_dir() / "tea_ppcg_precon.in").string());
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kPpcg);
  EXPECT_EQ(cfg.problem().preconditioner, tl::PreconKind::kJacDiag);
  EXPECT_EQ(cfg.problem().coefficient, tl::CoefficientKind::kDensity);
  EXPECT_EQ(cfg.problem().ppcg_inner_steps, 12);
  // Run a shrunken version end-to-end on two backend families.
  auto p = cfg.problem();
  p.x_cells = 48;
  p.y_cells = 48;
  p.end_step = 1;
  const auto ref = tea::run_simulation("serial", p);
  const auto kk = tea::run_simulation("kokkos-omp", p);
  ASSERT_TRUE(ref.all_converged());
  ASSERT_TRUE(kk.all_converged());
  EXPECT_NEAR(kk.final_summary.temp, ref.final_summary.temp,
              1e-7 * std::fabs(ref.final_summary.temp));
}

}  // namespace
