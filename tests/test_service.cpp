// Tests for the solve service (src/service): bounded-queue admission and
// batching, FieldStore arena reuse, plan-cache determinism and persistence,
// batched-vs-sequential golden agreement, and concurrent submit/shutdown
// (this suite runs under TSan in CI alongside test_threading/test_stress).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/backends/field_arena.hpp"
#include "core/registry.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "service/plan_cache.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"
#include "threading/task_queue.hpp"
#include "tuning/plan.hpp"

namespace {

tl::ProblemConfig tiny_problem(int mesh, int steps) {
  return results::bench_problem(mesh, steps);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// BoundedTaskQueue
// ---------------------------------------------------------------------------

TEST(TaskQueue, AdmissionRefusesAtCapacityAndAfterClose) {
  tlp::BoundedTaskQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  EXPECT_FALSE(queue.try_push(4));  // closed
  // Queued entries still drain after close.
  const auto group = queue.pop_group(10, [](int, int) { return true; });
  EXPECT_EQ(group.size(), 2u);
  EXPECT_TRUE(queue.pop_group(1, [](int, int) { return true; }).empty());
}

TEST(TaskQueue, PopGroupBatchesOnlyCompatibleEntriesInOrder) {
  tlp::BoundedTaskQueue<int> queue(8);
  for (int v : {1, 3, 2, 5, 4}) ASSERT_TRUE(queue.try_push(v));
  // Group head 1 with every other odd entry, bounded at 3.
  const auto odds = queue.pop_group(
      3, [](int head, int other) { return (head % 2) == (other % 2); });
  EXPECT_EQ(odds, (std::vector<int>{1, 3, 5}));
  // Evens stayed queued, order preserved.
  const auto rest = queue.pop_group(10, [](int, int) { return true; });
  EXPECT_EQ(rest, (std::vector<int>{2, 4}));
}

TEST(TaskQueue, CloseAndDrainReturnsDropped) {
  tlp::BoundedTaskQueue<int> queue(4);
  ASSERT_TRUE(queue.try_push(7));
  ASSERT_TRUE(queue.try_push(8));
  const auto dropped = queue.close_and_drain();
  EXPECT_EQ(dropped, (std::vector<int>{7, 8}));
  EXPECT_TRUE(queue.pop_group(1, [](int, int) { return true; }).empty());
}

// ---------------------------------------------------------------------------
// FieldStore arena
// ---------------------------------------------------------------------------

TEST(FieldArena, ReusesSameGeometryAndRezeroes) {
  tea::FieldArena arena;
  tea::PartitionGeom geom;
  geom.nx = geom.gnx = 12;
  geom.ny = geom.gny = 10;

  auto first = arena.acquire(geom, nullptr);
  tea::FieldStore* slab = first.get();
  first->view(tea::FieldId::kU)(3, 4) = 42.0;
  first->swap_fields(tea::FieldId::kU, tea::FieldId::kR);
  arena.release(std::move(first));
  EXPECT_EQ(arena.pooled(), 1u);

  auto second = arena.acquire(geom, nullptr);
  EXPECT_EQ(second.get(), slab);  // same slab came back
  // Reset semantics: identity slots, every cell zero again.
  EXPECT_EQ(second->cview(tea::FieldId::kU)(3, 4), 0.0);
  EXPECT_EQ(second->cview(tea::FieldId::kR)(3, 4), 0.0);

  const tea::FieldArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.allocated, 1);
  EXPECT_EQ(stats.reused, 1);
}

TEST(FieldArena, DifferentGeometryAllocatesFresh) {
  tea::FieldArena arena;
  tea::PartitionGeom small;
  small.nx = small.gnx = 8;
  small.ny = small.gny = 8;
  tea::PartitionGeom big = small;
  big.nx = big.gnx = 16;

  arena.release(arena.acquire(small, nullptr));
  auto other = arena.acquire(big, nullptr);
  EXPECT_EQ(arena.stats().allocated, 2);
  EXPECT_EQ(arena.stats().reused, 0);
  EXPECT_EQ(arena.pooled(), 1u);  // the small slab is still pooled
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

tuning::TuneOptions tiny_tune_options() {
  tuning::TuneOptions options;
  options.budget = 2;
  options.samples = 1;
  return options;
}

TEST(PlanCache, FetchOrTuneTunesOnceThenHitsBitIdentically) {
  results::ResultStore store;
  service::PlanCache cache(4);
  const tl::ProblemConfig problem = tiny_problem(24, 1);

  const tuning::TunedPlan cold =
      cache.fetch_or_tune(store, problem, tiny_tune_options());
  const tuning::TunedPlan warm =
      cache.fetch_or_tune(store, problem, tiny_tune_options());

  const service::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.tunes, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  // The warm hit returns the stored plan bits unchanged.
  EXPECT_EQ(tuning::plan_to_json(cold).dump(), tuning::plan_to_json(warm).dump());
  EXPECT_EQ(cold.deck_hash, results::problem_key(problem));
}

TEST(PlanCache, PersistsAndReloadsEntries) {
  const std::string path = temp_path("plan_cache_roundtrip.json");
  std::remove(path.c_str());
  results::ResultStore store;
  const tl::ProblemConfig problem = tiny_problem(24, 1);

  std::string cold_json;
  {
    service::PlanCache cache(4, path);
    cache.load();  // missing file: no-op
    const tuning::TunedPlan plan =
        cache.fetch_or_tune(store, problem, tiny_tune_options());
    cold_json = tuning::plan_to_json(plan).dump();
    cache.save();
  }
  {
    service::PlanCache cache(4, path);
    cache.load();
    EXPECT_EQ(cache.size(), 1u);
    tuning::TunedPlan reloaded;
    ASSERT_TRUE(cache.lookup(service::PlanCache::key_for(problem), &reloaded));
    EXPECT_EQ(tuning::plan_to_json(reloaded).dump(), cold_json);
    EXPECT_EQ(cache.stats().tunes, 0);  // the reload never tuned
  }
  std::remove(path.c_str());
}

TEST(PlanCache, LruBoundEvictsOldest) {
  service::PlanCache cache(2);
  tuning::TunedPlan plan;
  cache.insert("a", plan);
  cache.insert("b", plan);
  ASSERT_TRUE(cache.lookup("a", nullptr));  // touch: "b" is now LRU
  cache.insert("c", plan);                  // evicts "b"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup("a", nullptr));
  EXPECT_FALSE(cache.lookup("b", nullptr));
  EXPECT_TRUE(cache.lookup("c", nullptr));
}

// ---------------------------------------------------------------------------
// SolveService
// ---------------------------------------------------------------------------

service::ServiceOptions portable_options() {
  service::ServiceOptions options;
  options.workers = 2;
  options.threads_per_worker = 2;
  options.enable_tuning = false;  // deck defaults on manual-omp
  return options;
}

TEST(SolveService, RejectsDeterministicallyWhenQueueFull) {
  service::ServiceOptions options = portable_options();
  options.queue_capacity = 2;
  // Workers are NOT started: admissions are deterministic.
  service::SolveService daemon(options);
  service::SolveRequest request;
  request.problem = tiny_problem(24, 1);

  EXPECT_NE(daemon.submit(request), nullptr);
  EXPECT_NE(daemon.submit(request), nullptr);
  EXPECT_EQ(daemon.submit(request), nullptr);  // bound hit
  const service::ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.rejected, 1);
}

TEST(SolveService, ShutdownBeforeStartFailsQueuedTicketsLoudly) {
  service::ServiceOptions options = portable_options();
  service::SolveService daemon(options);
  service::SolveRequest request;
  request.problem = tiny_problem(24, 1);
  const service::Ticket ticket = daemon.submit(request);
  ASSERT_NE(ticket, nullptr);
  daemon.shutdown();  // never started: the request cannot be served
  const service::SolveResponse response = daemon.wait(ticket);
  EXPECT_FALSE(response.ok());
  EXPECT_NE(response.error.find("shut down"), std::string::npos);
}

TEST(SolveService, BatchedSolvesMatchSequentialBitwise) {
  const tl::ProblemConfig problem = tiny_problem(32, 2);

  // Sequential reference: the ordinary one-shot entry point.
  tea::RunOptions run_options;
  run_options.threads = 2;
  const tea::RunResult reference =
      tea::run_simulation("manual-omp", problem, run_options);
  ASSERT_TRUE(reference.all_converged());

  // Service: same requests submitted back-to-back so they batch and the
  // later solves run on arena-reused slabs.
  service::ServiceOptions options = portable_options();
  options.workers = 1;  // one shard: every request shares pool + arena
  options.max_batch = 3;
  service::SolveService daemon(options);
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    service::SolveRequest request;
    request.label = "golden-" + std::to_string(i);
    request.problem = problem;
    tickets.push_back(daemon.submit(request));
    ASSERT_NE(tickets.back(), nullptr);
  }
  daemon.start();
  for (const service::Ticket& ticket : tickets) {
    const service::SolveResponse response = daemon.wait(ticket);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.variant, "manual-omp");
    EXPECT_EQ(response.batch_size, 3);
    EXPECT_TRUE(response.converged);
    // Bit-exact agreement: batching and arena reuse never change numerics.
    EXPECT_EQ(response.iterations, reference.total_iterations);
    EXPECT_EQ(response.initial_rr, reference.steps.front().solve.initial_rr);
    EXPECT_EQ(response.final_rr, reference.steps.back().solve.final_rr);
    EXPECT_EQ(response.final_temperature, reference.final_summary.temp);
  }
  daemon.shutdown();
  const service::ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_solves, 3);
  EXPECT_EQ(stats.arena.allocated, 1);
  EXPECT_EQ(stats.arena.reused, 2);
}

TEST(SolveService, ConcurrentSubmittersAllGetResponses) {
  service::ServiceOptions options = portable_options();
  options.queue_capacity = 4;  // small: forces rejections under contention
  options.max_batch = 2;
  service::SolveService daemon(options);
  daemon.start();

  const tl::ProblemConfig problem = tiny_problem(24, 1);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::atomic<long> served{0};
  std::atomic<long> refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        service::SolveRequest request;
        request.label = "p" + std::to_string(p) + "-" + std::to_string(i);
        request.problem = problem;
        const service::Ticket ticket = daemon.submit(request);
        if (ticket == nullptr) {
          ++refused;  // admission control under load is expected
          continue;
        }
        const service::SolveResponse response = daemon.wait(ticket);
        EXPECT_TRUE(response.ok()) << response.error;
        ++served;
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  daemon.shutdown();

  EXPECT_EQ(served + refused, kProducers * kPerProducer);
  EXPECT_GT(served.load(), 0);
  const service::ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.completed, served.load());
  EXPECT_EQ(stats.submitted, served.load());
  EXPECT_EQ(stats.rejected, refused.load());
}

TEST(SolveService, ReplayAppliesBackpressureAndServesEverything) {
  service::ServiceOptions options = portable_options();
  options.queue_capacity = 2;
  service::SolveService daemon(options);
  std::vector<service::SolveRequest> requests(2);
  requests[0].label = "a";
  requests[0].problem = tiny_problem(24, 1);
  requests[1].label = "b";
  requests[1].problem = tiny_problem(32, 1);
  const service::ReplayReport report =
      service::run_replay(daemon, requests, 4);
  daemon.shutdown();
  EXPECT_EQ(report.responses.size(), 8u);
  EXPECT_TRUE(report.all_ok());
  EXPECT_GT(report.throughput_sps, 0.0);
  EXPECT_GE(report.p99_s, report.p50_s);
  // Responses come back in submission order.
  EXPECT_EQ(report.responses.front().label, "a");
  EXPECT_EQ(report.responses.back().label, "b");
}

TEST(Replay, PercentilesAreNearestRank) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i * 0.001);
  EXPECT_DOUBLE_EQ(service::latency_percentile(samples, 0.5), 0.051);
  EXPECT_DOUBLE_EQ(service::latency_percentile(samples, 0.99), 0.099);
  EXPECT_DOUBLE_EQ(service::latency_percentile(samples, 1.0), 0.100);
  EXPECT_DOUBLE_EQ(service::latency_percentile({}, 0.5), 0.0);
}

// A TunedPlan whose winner is a device variant, shaped like the tuner
// would emit for `problem` (solver/precon lifted from the deck, no
// device-choice table so the winner applies at every mesh).
tuning::TunedPlan device_plan_for(const tl::ProblemConfig& problem,
                                  const std::string& variant) {
  tuning::TunedPlan plan;
  plan.deck = "injected";
  plan.deck_hash = results::problem_key(problem);
  plan.mesh_x = problem.x_cells;
  plan.mesh_y = problem.y_cells;
  plan.steps = problem.end_step;
  plan.winner.variant = variant;
  plan.winner.solver = tl::to_string(problem.solver);
  plan.winner.precon = tl::to_string(problem.preconditioner);
  return plan;
}

TEST(SolveService, DeviceVariantBatchesMatchSequentialBitwise) {
  // Satellite contract: a device-variant plan executes on the worker's own
  // shard (pool + DeviceScope-bound Device), never through a silent
  // run_simulation fallback — and batching still never changes numerics.
  const tl::ProblemConfig problem = tiny_problem(32, 2);
  const tea::RunResult reference =
      tea::run_simulation("manual-cuda", problem, {});
  ASSERT_TRUE(reference.all_converged());

  results::ResultStore store;
  service::ServiceOptions options;
  options.workers = 1;
  options.threads_per_worker = 2;
  options.enable_tuning = true;
  options.max_batch = 3;
  service::SolveService daemon(options, &store);
  daemon.plan_cache().insert(service::PlanCache::key_for(problem),
                             device_plan_for(problem, "manual-cuda"));
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    service::SolveRequest request;
    request.label = "gpu-" + std::to_string(i);
    request.problem = problem;
    tickets.push_back(daemon.submit(request));
    ASSERT_NE(tickets.back(), nullptr);
  }
  daemon.start();
  for (const service::Ticket& ticket : tickets) {
    const service::SolveResponse response = daemon.wait(ticket);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.variant, "manual-cuda");
    EXPECT_EQ(response.batch_size, 3);
    EXPECT_TRUE(response.converged);
    EXPECT_EQ(response.iterations, reference.total_iterations);
    EXPECT_EQ(response.initial_rr, reference.steps.front().solve.initial_rr);
    EXPECT_EQ(response.final_rr, reference.steps.back().solve.final_rr);
    EXPECT_EQ(response.final_temperature, reference.final_summary.temp);
  }
  daemon.shutdown();
  const service::ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.fallback_solves, 0);  // the shard served every solve
}

TEST(SolveService, ConcurrentShardsSolveOnPrivateDevices) {
  // Two shards, two distinct device-variant problems queued before start:
  // the workers race through construction, kernels and teardown on their
  // own Devices.  This runs under TSan in CI — a shared device would trip
  // it (and the allocator bookkeeping would cross-talk).
  results::ResultStore store;
  service::ServiceOptions options;
  options.workers = 2;
  options.threads_per_worker = 2;
  options.enable_tuning = true;
  service::SolveService daemon(options, &store);
  const tl::ProblemConfig small = tiny_problem(24, 1);
  const tl::ProblemConfig large = tiny_problem(32, 1);
  daemon.plan_cache().insert(service::PlanCache::key_for(small),
                             device_plan_for(small, "manual-cuda"));
  daemon.plan_cache().insert(service::PlanCache::key_for(large),
                             device_plan_for(large, "kokkos-cuda"));
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    service::SolveRequest request;
    request.label = "shard-" + std::to_string(i);
    request.problem = (i % 2 == 0) ? small : large;
    tickets.push_back(daemon.submit(request));
    ASSERT_NE(tickets.back(), nullptr);
  }
  daemon.start();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const service::SolveResponse response = daemon.wait(tickets[i]);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.variant, i % 2 == 0 ? "manual-cuda" : "kokkos-cuda");
    EXPECT_TRUE(response.converged);
  }
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().fallback_solves, 0);
}

TEST(SolveService, DistributedWinnersFallBackAndAreCounted) {
  results::ResultStore store;
  service::ServiceOptions options;
  options.workers = 1;
  options.threads_per_worker = 2;
  options.enable_tuning = true;
  service::SolveService daemon(options, &store);
  const tl::ProblemConfig problem = tiny_problem(24, 1);
  tuning::TunedPlan plan = device_plan_for(problem, "manual-mpi");
  plan.winner.ranks = 2;
  daemon.plan_cache().insert(service::PlanCache::key_for(problem), plan);
  daemon.start();
  service::SolveRequest request;
  request.problem = problem;
  const service::Ticket ticket = daemon.submit(request);
  ASSERT_NE(ticket, nullptr);
  const service::SolveResponse response = daemon.wait(ticket);
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.variant, "manual-mpi");
  EXPECT_TRUE(response.converged);
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().fallback_solves, 1);
}

TEST(SolveService, TunedModeCachesPlansPerProblem) {
  results::ResultStore store;
  service::ServiceOptions options;
  options.workers = 1;
  options.threads_per_worker = 2;
  options.enable_tuning = true;
  options.tune = tiny_tune_options();
  service::SolveService daemon(options, &store);
  std::vector<service::SolveRequest> requests(1);
  requests[0].label = "tuned";
  requests[0].problem = tiny_problem(24, 1);
  const service::ReplayReport report =
      service::run_replay(daemon, requests, 3);
  daemon.shutdown();
  ASSERT_TRUE(report.all_ok());
  const service::ServiceStats stats = daemon.stats();
  EXPECT_EQ(stats.plan.tunes, 1);  // one distinct problem: one tune
  EXPECT_EQ(stats.plan.misses, 1);
  EXPECT_GT(store.size(), 0u);  // tune measurements landed in the store
}

}  // namespace
