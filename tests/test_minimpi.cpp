// Unit and property tests for minimpi: point-to-point semantics, message
// ordering, nonblocking requests, collectives against sequential references,
// and the 2D Cartesian topology.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"

namespace {

using minimpi::Comm;
using minimpi::ReduceOp;

TEST(P2P, PingPong) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(42, 1, /*tag=*/7);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 43);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 42);
      comm.send_value(43, 0, 8);
    }
  });
}

TEST(P2P, VectorPayloadRoundTrips) {
  minimpi::run_world(2, [](Comm& comm) {
    std::vector<double> data(1000);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.5);
      comm.send(tl::span<const double>(data), 1, 1);
    } else {
      const auto st = comm.recv(tl::span<double>(data), 0, 1);
      EXPECT_EQ(st.count<double>(), 1000u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 1);
      EXPECT_DOUBLE_EQ(data[999], 999.5);
    }
  });
}

TEST(P2P, NonOvertakingPerTag) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value(i, 1, /*tag=*/3);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(P2P, TagSelectivity) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, /*tag=*/10);
      comm.send_value(2, 1, /*tag=*/20);
    } else {
      // Receive the later tag first: matching must be by tag, not order.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(P2P, AnySourceAndAnyTag) {
  minimpi::run_world(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(comm.rank(), 0, comm.rank() * 100);
    } else {
      int sum = 0;
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        const auto st = comm.recv(tl::span<int>(&v, 1), minimpi::kAnySource,
                                  minimpi::kAnyTag);
        EXPECT_EQ(st.tag, st.source * 100);
        sum += v;
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(P2P, ProcNullIsNoop) {
  minimpi::run_world(1, [](Comm& comm) {
    double v = 5.0;
    comm.send(tl::span<const double>(&v, 1), minimpi::kProcNull, 0);
    const auto st = comm.recv(tl::span<double>(&v, 1), minimpi::kProcNull, 0);
    EXPECT_EQ(st.bytes, 0u);
    EXPECT_DOUBLE_EQ(v, 5.0);  // untouched
  });
}

TEST(P2P, InvalidRankThrows) {
  minimpi::run_world(1, [](Comm& comm) {
    int v = 0;
    EXPECT_THROW(comm.send_value(v, 5, 0), tl::Error);
  });
}

TEST(P2P, IsendIrecvWaitall) {
  minimpi::run_world(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<double> out(64, static_cast<double>(comm.rank()));
    std::vector<double> in(64, -1.0);
    std::vector<minimpi::Request> reqs;
    reqs.push_back(comm.irecv(tl::span<double>(in), peer, 0));
    reqs.push_back(comm.isend(tl::span<const double>(out), peer, 0));
    comm.waitall(tl::span<minimpi::Request>(reqs));
    EXPECT_DOUBLE_EQ(in[0], static_cast<double>(peer));
    for (const auto& r : reqs) EXPECT_TRUE(r.done());
  });
}

TEST(P2P, RecvTruncationIsAHardError) {
  // MPI semantics: a message longer than the posted receive buffer is an
  // error (MPI_ERR_TRUNCATE), never a silent partial copy.  Pinned so the
  // mailbox can never regress to truncating payloads.
  EXPECT_THROW(minimpi::run_world(2,
                                  [](Comm& comm) {
                                    std::vector<double> big(16, 1.0);
                                    std::vector<double> small(4, 0.0);
                                    if (comm.rank() == 0) {
                                      comm.send(tl::span<const double>(big), 1,
                                                0);
                                    } else {
                                      comm.recv(tl::span<double>(small), 0, 0);
                                    }
                                  }),
               tl::Error);
}

TEST(P2P, TestCompletesArrivedRequest) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(11, 1, 4);
      comm.barrier();
    } else {
      int v = 0;
      minimpi::Request req = comm.irecv(tl::span<int>(&v, 1), 0, 4);
      comm.barrier();  // after this the message must have been enqueued
      EXPECT_TRUE(comm.test(req));
      EXPECT_TRUE(req.done());
      EXPECT_EQ(req.status().source, 0);
      EXPECT_EQ(req.status().bytes, sizeof(int));
      EXPECT_EQ(v, 11);
      EXPECT_TRUE(comm.test(req));  // idempotent once complete
    }
  });
}

TEST(P2P, TestReturnsFalseBeforeArrival) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      int v = 0;
      minimpi::Request req = comm.irecv(tl::span<int>(&v, 1), 0, 4);
      EXPECT_FALSE(comm.test(req));  // nothing sent yet
      comm.barrier();
      comm.wait(req);
      EXPECT_EQ(v, 21);
    } else {
      comm.barrier();
      comm.send_value(21, 1, 4);
    }
  });
}

TEST(P2P, TestOnProcNullRecvCompletesEmpty) {
  minimpi::run_world(1, [](Comm& comm) {
    double v = 3.0;
    minimpi::Request req =
        comm.irecv(tl::span<double>(&v, 1), minimpi::kProcNull, 9);
    EXPECT_TRUE(comm.test(req));
    EXPECT_EQ(req.status().bytes, 0u);
    EXPECT_DOUBLE_EQ(v, 3.0);  // untouched
  });
}

TEST(P2P, IprobeSeesPendingMessage) {
  minimpi::run_world(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(9, 1, 5);
      comm.barrier();
    } else {
      comm.barrier();  // after this the message must have been enqueued
      minimpi::Status st;
      EXPECT_TRUE(comm.iprobe(0, 5, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_FALSE(comm.iprobe(0, 6));
      EXPECT_EQ(comm.recv_value<int>(0, 5), 9);
    }
  });
}

// --- collectives, parameterized over world size -----------------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  minimpi::run_world(GetParam(), [](Comm& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<long> data(16, comm.rank() == root ? root * 1000 : -1);
      comm.bcast(tl::span<long>(data), root);
      for (const long v : data) EXPECT_EQ(v, root * 1000);
    }
  });
}

TEST_P(CollectiveTest, ReduceSumMatchesClosedForm) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    const double v = static_cast<double>(comm.rank() + 1);
    const double result = comm.reduce(v, ReduceOp::kSum, /*root=*/0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(result, n * (n + 1) / 2.0);
    }
  });
}

TEST_P(CollectiveTest, AllreduceAllOps) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    const double v = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, ReduceOp::kSum), n * (n + 1) / 2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(v, ReduceOp::kMax), static_cast<double>(n));
    // Product of 1..n.
    double expect = 1.0;
    for (int k = 1; k <= n; ++k) expect *= k;
    EXPECT_DOUBLE_EQ(comm.allreduce(v, ReduceOp::kProd), expect);
  });
}

TEST_P(CollectiveTest, VectorAllreduceElementwise) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    double vals[3] = {1.0, static_cast<double>(comm.rank()),
                      static_cast<double>(comm.rank() * comm.rank())};
    comm.allreduce(tl::span<double>(vals), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(vals[0], static_cast<double>(n));
    EXPECT_DOUBLE_EQ(vals[1], n * (n - 1) / 2.0);
  });
}

TEST_P(CollectiveTest, GatherAndAllgather) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    const auto gathered = comm.gather(comm.rank() * 2, /*root=*/0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) EXPECT_EQ(gathered[static_cast<std::size_t>(r)], r * 2);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
    const auto all = comm.allgather(comm.rank() + 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 10);
  });
}

TEST_P(CollectiveTest, ScatterDistributesRootValues) {
  const int n = GetParam();
  minimpi::run_world(n, [n](Comm& comm) {
    std::vector<int> values;
    if (comm.rank() == 0) {
      values.resize(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) values[static_cast<std::size_t>(r)] = r * r;
    }
    const int mine = comm.scatter(tl::span<const int>(values), /*root=*/0);
    EXPECT_EQ(mine, comm.rank() * comm.rank());
  });
}

TEST_P(CollectiveTest, MixedTrafficDoesNotCorruptCollectives) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP() << "needs at least 2 ranks";
  minimpi::run_world(n, [](Comm& comm) {
    // Interleave user p2p traffic with collectives on reserved tags.
    const int peer = comm.rank() ^ 1;
    if (peer < comm.size()) {
      comm.send_value(comm.rank(), peer, /*tag=*/1);
    }
    const double sum = comm.allreduce(1.0, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(comm.size()));
    if (peer < comm.size()) {
      EXPECT_EQ(comm.recv_value<int>(peer, 1), peer);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(World, ExceptionFromRankPropagates) {
  EXPECT_THROW(minimpi::run_world(3,
                                  [](Comm& comm) {
                                    comm.barrier();
                                    if (comm.rank() == 1) {
                                      throw tl::Error("rank 1 exploded");
                                    }
                                  }),
               tl::Error);
}

TEST(World, RejectsNonPositiveSize) {
  EXPECT_THROW(minimpi::World(0), tl::Error);
}

// --- cartesian topology -------------------------------------------------------

TEST(Cart, DimsCreateNearSquare) {
  EXPECT_EQ(minimpi::dims_create(1), (std::array<int, 2>{1, 1}));
  EXPECT_EQ(minimpi::dims_create(4), (std::array<int, 2>{2, 2}));
  EXPECT_EQ(minimpi::dims_create(6), (std::array<int, 2>{3, 2}));
  EXPECT_EQ(minimpi::dims_create(7), (std::array<int, 2>{7, 1}));
  EXPECT_EQ(minimpi::dims_create(12), (std::array<int, 2>{4, 3}));
}

TEST(Cart, CoordsRoundTripAndNeighbours) {
  minimpi::run_world(6, [](Comm& comm) {
    minimpi::Cart2D cart(comm, {3, 2});
    const auto [cx, cy] = cart.coords();
    EXPECT_EQ(cart.rank_of(cx, cy), comm.rank());
    // Boundary neighbours are PROC_NULL.
    if (cx == 0) EXPECT_EQ(cart.left(), minimpi::kProcNull);
    if (cx == 2) EXPECT_EQ(cart.right(), minimpi::kProcNull);
    if (cy == 0) EXPECT_EQ(cart.down(), minimpi::kProcNull);
    if (cy == 1) EXPECT_EQ(cart.up(), minimpi::kProcNull);
    // Interior neighbours are mutual.
    if (cart.right() != minimpi::kProcNull) {
      const auto rc = cart.coords_of(cart.right());
      EXPECT_EQ(rc[0], cx + 1);
      EXPECT_EQ(rc[1], cy);
    }
  });
}

TEST(Cart, RejectsMismatchedDims) {
  minimpi::run_world(4, [](Comm& comm) {
    EXPECT_THROW(minimpi::Cart2D(comm, {3, 2}), tl::Error);
  });
}

TEST(BlockRange, PartitionsCellsContiguously) {
  for (const int cells : {1, 10, 97, 1000}) {
    for (const int parts : {1, 2, 3, 7}) {
      int expected_begin = 0;
      for (int p = 0; p < parts; ++p) {
        const auto [b, e] = minimpi::block_range(cells, parts, p);
        EXPECT_EQ(b, expected_begin);
        EXPECT_GE(e, b);
        expected_begin = e;
      }
      EXPECT_EQ(expected_begin, cells);
    }
  }
}

TEST(BlockRange, SizesWithinOneCell) {
  for (int p = 0; p < 3; ++p) {
    const auto [b, e] = minimpi::block_range(10, 3, p);
    EXPECT_GE(e - b, 3);
    EXPECT_LE(e - b, 4);
  }
}

}  // namespace
