// Numerical tests for the solver layer: operator properties (symmetry,
// positive-definiteness), convergence of all four solvers, cross-solver
// solution agreement, and the tridiagonal eigenvalue estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/backends/manual_host.hpp"
#include "core/solvers/eigen.hpp"
#include "core/solvers/solver.hpp"

namespace {

using tea::FieldId;

tl::ProblemConfig small_problem(int n = 32) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = n;
  cfg.problem().y_cells = n;
  cfg.problem().end_step = 1;
  cfg.problem().eps = 1e-12;
  return cfg.problem();
}

/// Backend prepared to the point where a solve can start.
struct Prepared {
  std::unique_ptr<tea::ManualHostBackend> backend;
  tl::ProblemConfig cfg;
};

Prepared prepare(int n = 32) {
  Prepared p;
  p.cfg = small_problem(n);
  p.backend =
      std::make_unique<tea::ManualHostBackend>("serial", nullptr, nullptr);
  p.backend->setup(p.cfg);
  const double dt = p.cfg.initial_timestep;
  p.backend->set_rx_ry(dt / (p.cfg.dx() * p.cfg.dx()),
                       dt / (p.cfg.dy() * p.cfg.dy()));
  p.backend->compute_coefficients(p.cfg.coefficient);
  p.backend->init_u_u0();
  return p;
}

/// Fill a field with seeded pseudo-random values in [lo, hi).
void randomize(tea::ManualHostBackend& b, FieldId f, std::uint64_t seed,
               double lo = -1.0, double hi = 1.0) {
  tl::Rng rng(seed);
  auto v = b.store().view(f);
  const auto& g = b.geom();
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) v(i, j) = rng.uniform(lo, hi);
  }
}

TEST(Operator, IsSymmetric) {
  // <Ax, y> == <x, Ay> for random x, y (with reflected halos).
  auto p = prepare(24);
  auto& b = *p.backend;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    randomize(b, FieldId::kP, seed);
    randomize(b, FieldId::kZ, seed + 100);
    b.update_halo({FieldId::kP, FieldId::kZ}, 1);
    b.apply_operator(FieldId::kP, FieldId::kW);   // w = A x
    const double ax_y = b.dot(FieldId::kW, FieldId::kZ);
    b.apply_operator(FieldId::kZ, FieldId::kW);   // w = A y
    const double x_ay = b.dot(FieldId::kP, FieldId::kW);
    EXPECT_NEAR(ax_y, x_ay, 1e-9 * std::max(1.0, std::fabs(ax_y)))
        << "seed " << seed;
  }
}

TEST(Operator, IsPositiveDefinite) {
  auto p = prepare(24);
  auto& b = *p.backend;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    randomize(b, FieldId::kP, seed);
    b.update_halo({FieldId::kP}, 1);
    b.apply_operator(FieldId::kP, FieldId::kW);
    const double xax = b.dot(FieldId::kP, FieldId::kW);
    const double xx = b.dot(FieldId::kP, FieldId::kP);
    EXPECT_GT(xax, 0.0);
    // A = I + L with L positive semidefinite: <x,Ax> >= <x,x>.
    EXPECT_GE(xax, xx * (1.0 - 1e-12));
  }
}

TEST(Operator, IdentityPlusDiffusionOnConstantField) {
  // A applied to a constant field returns the same constant (reflective
  // boundaries make the diffusion term vanish).
  auto p = prepare(16);
  auto& b = *p.backend;
  auto v = b.store().view(FieldId::kP);
  const auto& g = b.geom();
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) v(i, j) = 3.75;
  }
  b.update_halo({FieldId::kP}, 1);
  b.apply_operator(FieldId::kP, FieldId::kW);
  auto w = b.store().view(FieldId::kW);
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      ASSERT_NEAR(w(i, j), 3.75, 1e-12) << i << "," << j;
    }
  }
}

class SolverKindTest : public ::testing::TestWithParam<tl::SolverKind> {};

TEST_P(SolverKindTest, ConvergesAndReducesResidual) {
  auto p = prepare(32);
  auto& b = *p.backend;
  tea::SolveOptions o;
  o.eps = 1e-10;
  o.max_iters = 20000;
  const auto stats = tea::solve(b, GetParam(), o);
  EXPECT_TRUE(stats.converged) << tl::to_string(GetParam());
  EXPECT_GT(stats.iterations, 0);
  EXPECT_LE(stats.final_rr, o.eps * stats.initial_rr * (1.0 + 1e-9));
}

TEST_P(SolverKindTest, SolutionSatisfiesSystem) {
  auto p = prepare(24);
  auto& b = *p.backend;
  tea::SolveOptions o;
  o.eps = 1e-14;
  o.max_iters = 50000;
  const auto stats = tea::solve(b, GetParam(), o);
  ASSERT_TRUE(stats.converged);
  // Recompute the true residual r = u0 - A u and compare with ||u0||.
  b.update_halo({FieldId::kU}, 1);
  b.compute_residual();
  const double rr = b.dot(FieldId::kR, FieldId::kR);
  const double bb = b.dot(FieldId::kU0, FieldId::kU0);
  EXPECT_LE(std::sqrt(rr), 1e-6 * std::sqrt(bb));
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverKindTest,
                         ::testing::Values(tl::SolverKind::kJacobi,
                                           tl::SolverKind::kCg,
                                           tl::SolverKind::kCheby,
                                           tl::SolverKind::kPpcg));

TEST(Cg, ResidualDecreasesMonotonically) {
  // Track rr across restarts of increasing iteration budget; CG's residual
  // norm in the A-energy sense decreases, and for this SPD system the
  // l2 residual at the checked points should shrink as the budget grows.
  std::vector<double> finals;
  for (const int budget : {4, 8, 12, 16, 24}) {
    auto p = prepare(32);
    tea::SolveOptions o;
    o.eps = 0.0;  // never converge early
    o.max_iters = budget;
    const auto stats = tea::solve_cg(*p.backend, o);
    EXPECT_EQ(stats.iterations, budget);
    finals.push_back(stats.final_rr);
  }
  for (std::size_t k = 1; k < finals.size(); ++k) {
    EXPECT_LT(finals[k], finals[k - 1]);
  }
}

TEST(Cg, FasterThanJacobiInIterations) {
  auto pj = prepare(32);
  auto pc = prepare(32);
  tea::SolveOptions o;
  o.eps = 1e-10;
  o.max_iters = 50000;
  const auto jac = tea::solve_jacobi(*pj.backend, o);
  const auto cg = tea::solve_cg(*pc.backend, o);
  ASSERT_TRUE(jac.converged);
  ASSERT_TRUE(cg.converged);
  EXPECT_LT(cg.iterations, jac.iterations);
}

TEST(Solvers, AllProduceSameTemperatureField) {
  // Solve with each method and compare u pointwise.
  std::vector<std::vector<double>> solutions;
  for (const auto kind :
       {tl::SolverKind::kCg, tl::SolverKind::kJacobi, tl::SolverKind::kCheby,
        tl::SolverKind::kPpcg}) {
    auto p = prepare(20);
    tea::SolveOptions o;
    o.eps = 1e-14;
    o.max_iters = 100000;
    const auto stats = tea::solve(*p.backend, kind, o);
    ASSERT_TRUE(stats.converged);
    std::vector<double> u;
    auto v = p.backend->store().view(FieldId::kU);
    for (int j = 0; j < 20; ++j) {
      for (int i = 0; i < 20; ++i) u.push_back(v(i, j));
    }
    solutions.push_back(std::move(u));
  }
  for (std::size_t s = 1; s < solutions.size(); ++s) {
    for (std::size_t k = 0; k < solutions[0].size(); ++k) {
      EXPECT_NEAR(solutions[s][k], solutions[0][k],
                  1e-5 * std::max(1.0, std::fabs(solutions[0][k])))
          << "solver " << s << " cell " << k;
    }
  }
}

TEST(Solvers, TrivialRhsConvergesImmediately) {
  auto p = prepare(16);
  auto& b = *p.backend;
  // Zero the initial condition: r = 0 instantly.
  b.scale_copy(FieldId::kU, FieldId::kU, 0.0);
  b.scale_copy(FieldId::kU0, FieldId::kU0, 0.0);
  tea::SolveOptions o;
  const auto stats = tea::solve_cg(b, o);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

TEST(Solvers, NonConvergenceReported) {
  auto p = prepare(48);
  tea::SolveOptions o;
  o.eps = 1e-30;
  o.max_iters = 3;  // hopeless budget
  const auto stats = tea::solve_cg(*p.backend, o);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 3);
}

TEST(Ppcg, InnerStepsAccounted) {
  auto p = prepare(24);
  tea::SolveOptions o;
  o.eps = 1e-10;
  o.ppcg_inner_steps = 4;
  o.cheby_cg_presteps = 8;
  const auto stats = tea::solve_ppcg(*p.backend, o);
  ASSERT_TRUE(stats.converged);
  EXPECT_GT(stats.inner_iterations, 0);
  EXPECT_EQ(stats.inner_iterations % 4, 0);
}

// --- eigen estimation ------------------------------------------------------------

TEST(Eigen, DiagonalMatrixBoundsExact) {
  const std::vector<double> diag{1.0, 5.0, 3.0, 9.0};
  const std::vector<double> off{0.0, 0.0, 0.0};
  const auto b = tea::tridiag_eigen_bounds(diag, off);
  EXPECT_NEAR(b.lambda_min, 1.0, 1e-6);
  EXPECT_NEAR(b.lambda_max, 9.0, 1e-6);
}

TEST(Eigen, KnownTridiagonal) {
  // The N=4 second-difference matrix [2,-1] has eigenvalues
  // 2 - 2cos(k pi / 5), k=1..4.
  const std::vector<double> diag{2, 2, 2, 2};
  const std::vector<double> off{-1, -1, -1};
  const auto b = tea::tridiag_eigen_bounds(diag, off);
  const double pi = std::acos(-1.0);
  EXPECT_NEAR(b.lambda_min, 2 - 2 * std::cos(pi / 5.0), 1e-6);
  EXPECT_NEAR(b.lambda_max, 2 - 2 * std::cos(4 * pi / 5.0), 1e-6);
}

TEST(Eigen, SingleEntry) {
  const std::vector<double> diag{4.2};
  const auto b = tea::tridiag_eigen_bounds(diag, {});
  EXPECT_DOUBLE_EQ(b.lambda_min, 4.2);
  EXPECT_DOUBLE_EQ(b.lambda_max, 4.2);
}

TEST(Eigen, EmptyThrows) {
  EXPECT_THROW(tea::tridiag_eigen_bounds({}, {}), tl::Error);
}

TEST(Eigen, CgScalarBoundsEncloseOperatorAction) {
  // Estimate bounds from real CG scalars and verify the Rayleigh quotient of
  // random vectors lies inside them.
  auto p = prepare(24);
  auto& b = *p.backend;
  tea::SolveOptions o;
  o.eps = 1e-30;
  o.max_iters = 25;
  (void)tea::solve_cg(b, o);  // leaves alphas/betas unavailable; redo manually

  // Re-prepare and run the estimation path via the Chebyshev solver's
  // presteps by checking the bounds it derives are sane: lambda_min >= 0.5
  // (A = I + L) and lambda_max within a small factor of the Gershgorin bound.
  auto p2 = prepare(24);
  auto& b2 = *p2.backend;
  b2.update_halo({FieldId::kU}, 1);
  b2.compute_residual();
  b2.copy_field(FieldId::kR, FieldId::kP);
  double rro = b2.dot(FieldId::kR, FieldId::kR);
  std::vector<double> alphas, betas;
  for (int it = 0; it < 20; ++it) {
    b2.update_halo({FieldId::kP}, 1);
    b2.apply_operator(FieldId::kP, FieldId::kW);
    const double pw = b2.dot(FieldId::kP, FieldId::kW);
    if (pw == 0.0) break;
    const double alpha = rro / pw;
    b2.axpy(FieldId::kU, alpha, FieldId::kP);
    b2.axpy(FieldId::kR, -alpha, FieldId::kW);
    const double rrn = b2.dot(FieldId::kR, FieldId::kR);
    alphas.push_back(alpha);
    betas.push_back(rrn / rro);
    b2.zaxpy(FieldId::kP, rrn / rro, FieldId::kR);
    rro = rrn;
  }
  const auto bounds = tea::bounds_from_cg_scalars(alphas, betas);
  EXPECT_GE(bounds.lambda_min, 0.5);
  EXPECT_GT(bounds.lambda_max, bounds.lambda_min);

  // Rayleigh quotients of random vectors must lie within the (safety-
  // factored) bounds.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    randomize(b2, FieldId::kP, seed);
    b2.update_halo({FieldId::kP}, 1);
    b2.apply_operator(FieldId::kP, FieldId::kW);
    const double xax = b2.dot(FieldId::kP, FieldId::kW);
    const double xx = b2.dot(FieldId::kP, FieldId::kP);
    const double rayleigh = xax / xx;
    EXPECT_GE(rayleigh, bounds.lambda_min * 0.5);
    EXPECT_LE(rayleigh, bounds.lambda_max * 1.5);
  }
}

}  // namespace
