// Unit tests for the machine layer: counters, machine registry, efficiency
// calibration table, and roofline projection properties.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "machine/efficiency.hpp"
#include "machine/instrumentation.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"

namespace {

using machine::Counters;
using machine::EfficiencyProfile;
using machine::MachineModel;

TEST(Counters, ArithmeticAndSnapshot) {
  machine::Instrumentation instr;
  instr.add_traffic(100, 50, 10);
  instr.add_launch(2);
  instr.add_message(64);
  instr.add_h2d(8);
  instr.add_reduction();
  const Counters c = instr.snapshot();
  EXPECT_EQ(c.bytes_read, 100);
  EXPECT_EQ(c.bytes_written, 50);
  EXPECT_EQ(c.total_bytes(), 150);
  EXPECT_EQ(c.flops, 10);
  EXPECT_EQ(c.kernel_launches, 2);
  EXPECT_EQ(c.messages, 1);
  EXPECT_EQ(c.message_bytes, 64);
  EXPECT_EQ(c.h2d_bytes, 8);
  EXPECT_EQ(c.reductions, 1);
  instr.reset();
  EXPECT_EQ(instr.snapshot().total_bytes(), 0);
}

TEST(Counters, ScopeDeltas) {
  machine::Instrumentation instr;
  instr.add_traffic(1000, 0, 0);
  const machine::CounterScope scope(instr);
  instr.add_traffic(0, 500, 0);
  const Counters d = scope.delta();
  EXPECT_EQ(d.bytes_read, 0);
  EXPECT_EQ(d.bytes_written, 500);
}

TEST(Counters, ToStringMentionsFields) {
  Counters c;
  c.flops = 7;
  EXPECT_NE(c.to_string().find("flops=7"), std::string::npos);
}

TEST(MachineRegistry, PaperMachinesPresent) {
  const auto machines = machine::paper_machines();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0]->id, "xeon");
  EXPECT_EQ(machines[1]->id, "knl");
  EXPECT_EQ(machines[2]->id, "p100");
  EXPECT_FALSE(machines[0]->is_gpu());
  EXPECT_TRUE(machines[2]->is_gpu());
  // Table II headline specs.
  EXPECT_EQ(machines[0]->cores, 28);
  EXPECT_EQ(machines[1]->cores, 64);
  EXPECT_GT(machines[1]->peak_bw_gbs, machines[0]->peak_bw_gbs);
  EXPECT_GT(machines[2]->peak_bw_gbs, machines[1]->peak_bw_gbs);
}

TEST(MachineRegistry, LookupByIdAndUnknownThrows) {
  EXPECT_EQ(machine::machine_by_id("knl").id, "knl");
  EXPECT_THROW(machine::machine_by_id("cray-1"), tl::Error);
}

TEST(Efficiency, SupportMatrixMatchesPaper) {
  const auto& xeon = machine::xeon_e5_2660v4();
  const auto& knl = machine::knl_7210();
  const auto& p100 = machine::tesla_p100();
  // CPU variants run on CPUs, not on the GPU.
  EXPECT_TRUE(machine::supported("manual-omp", xeon));
  EXPECT_TRUE(machine::supported("manual-omp", knl));
  EXPECT_FALSE(machine::supported("manual-omp", p100));
  // GPU variants only on the P100.
  EXPECT_TRUE(machine::supported("kokkos-cuda", p100));
  EXPECT_FALSE(machine::supported("kokkos-cuda", xeon));
  // PGI 17.3 could not offload OpenACC to the KNL host (paper §IV-B).
  EXPECT_TRUE(machine::supported("manual-acc-cpu", xeon));
  EXPECT_FALSE(machine::supported("manual-acc-cpu", knl));
}

TEST(Efficiency, Table3AnchorsPreserved) {
  // [T3] anchors from the paper's Table III bandwidth column.
  EXPECT_NEAR(machine::efficiency_for("ops-tiled", machine::knl_7210()).bw_fraction,
              0.9593, 1e-9);
  EXPECT_NEAR(machine::efficiency_for("manual-cuda", machine::tesla_p100()).bw_fraction,
              0.757, 1e-9);
  EXPECT_NEAR(machine::efficiency_for("raja-omp", machine::xeon_e5_2660v4()).bw_fraction,
              0.531, 1e-9);
  // [APP] anchor: Kokkos' KNL residual is set from Table III *application*
  // efficiency (31.40%) because our leaner reimplementation moves fewer
  // bytes than the 2017 build (see efficiency.cpp).
  EXPECT_NEAR(machine::efficiency_for("kokkos-omp", machine::knl_7210()).bw_fraction,
              0.30, 1e-9);
}

TEST(Efficiency, UnsupportedLookupThrows) {
  EXPECT_THROW(machine::efficiency_for("manual-cuda", machine::knl_7210()),
               tl::Error);
}

TEST(Efficiency, FrameworkOfSplitsPrefix) {
  EXPECT_EQ(machine::framework_of("manual-acc-cpu"), "manual");
  EXPECT_EQ(machine::framework_of("ops-tiled"), "ops");
  EXPECT_EQ(machine::framework_of("serial"), "serial");
}

TEST(Efficiency, PaperVariantListHasSixteen) {
  EXPECT_EQ(machine::paper_variants().size(), 16u);
}

TEST(Efficiency, GpuVariantClassifier) {
  EXPECT_TRUE(machine::is_gpu_variant("ops-cuda"));
  EXPECT_TRUE(machine::is_gpu_variant("manual-acc-gpu"));
  EXPECT_TRUE(machine::is_gpu_variant("ops-acc"));
  EXPECT_FALSE(machine::is_gpu_variant("manual-acc-cpu"));
  EXPECT_FALSE(machine::is_gpu_variant("ops-tiled"));
}

// --- roofline properties ------------------------------------------------------

Counters stream_counters(std::int64_t bytes, std::int64_t flops = 0) {
  Counters c;
  c.bytes_read = bytes / 2;
  c.bytes_written = bytes - c.bytes_read;
  c.flops = flops;
  return c;
}

TEST(Roofline, TimeScalesLinearlyInBytes) {
  const EfficiencyProfile prof{.bw_fraction = 0.8};
  const auto& m = machine::xeon_e5_2660v4();
  const double t1 = machine::project_time(stream_counters(1'000'000'000), m, prof).total();
  const double t2 = machine::project_time(stream_counters(2'000'000'000), m, prof).total();
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(Roofline, HigherBandwidthMachineIsFaster) {
  const EfficiencyProfile prof{.bw_fraction = 0.8};
  const Counters c = stream_counters(10'000'000'000LL);
  const double xeon = machine::project_time(c, machine::xeon_e5_2660v4(), prof).total();
  const double knl = machine::project_time(c, machine::knl_7210(), prof).total();
  const double p100 = machine::project_time(c, machine::tesla_p100(), prof).total();
  EXPECT_GT(xeon, knl);
  EXPECT_GT(knl, p100);
}

TEST(Roofline, LaunchOverheadAdds) {
  const EfficiencyProfile prof{.bw_fraction = 0.8, .launch_multiplier = 2.0};
  const auto& m = machine::tesla_p100();
  Counters c = stream_counters(1'000'000);
  c.kernel_launches = 1000;
  const auto t = machine::project_time(c, m, prof);
  EXPECT_NEAR(t.launch_s, 1000 * m.launch_overhead_us * 2.0 * 1e-6, 1e-12);
  EXPECT_GT(t.total(), t.stream_s);
}

TEST(Roofline, StreamTermIsMaxOfMemoryAndCompute) {
  EfficiencyProfile prof{.bw_fraction = 1.0, .compute_fraction = 1.0};
  const auto& m = machine::xeon_e5_2660v4();
  // Memory-bound: huge bytes, few flops.
  auto mem = machine::project_time(stream_counters(1'000'000'000, 10), m, prof);
  EXPECT_DOUBLE_EQ(mem.stream_s, mem.memory_s);
  // Compute-bound: few bytes, huge flops.
  auto comp = machine::project_time(stream_counters(10, 10'000'000'000LL), m, prof);
  EXPECT_DOUBLE_EQ(comp.stream_s, comp.compute_s);
}

TEST(Roofline, MessagesAndPcieCharged) {
  EfficiencyProfile prof{.bw_fraction = 0.8};
  Counters c = stream_counters(1'000'000);
  c.messages = 100;
  c.message_bytes = 1'000'000;
  const auto cpu = machine::project_time(c, machine::xeon_e5_2660v4(), prof);
  EXPECT_GT(cpu.message_s, 0.0);
  Counters g = stream_counters(1'000'000);
  g.h2d_bytes = 100'000'000;
  const auto gpu = machine::project_time(g, machine::tesla_p100(), prof);
  EXPECT_NEAR(gpu.pcie_s, 100'000'000 / (12.0 * 1e9), 1e-9);
}

TEST(Roofline, KnlMcdramSpillDegradesBandwidth) {
  const EfficiencyProfile prof{.bw_fraction = 1.0};
  const Counters c = stream_counters(10'000'000'000LL);
  const auto& knl = machine::knl_7210();
  const double fits =
      machine::project_time(c, knl, prof, std::int64_t(8) << 30).total();
  const double spills =
      machine::project_time(c, knl, prof, std::int64_t(64) << 30).total();
  EXPECT_GT(spills, fits * 1.5);  // mostly-DDR traffic is much slower
  // No spill rule on the Xeon.
  const auto& xeon = machine::xeon_e5_2660v4();
  EXPECT_DOUBLE_EQ(
      machine::project_time(c, xeon, prof, std::int64_t(64) << 30).total(),
      machine::project_time(c, xeon, prof, 0).total());
}

TEST(Roofline, AchievedRatesConsistent) {
  const EfficiencyProfile prof{.bw_fraction = 0.5};
  const Counters c = stream_counters(1'000'000'000, 500);
  const auto& m = machine::knl_7210();
  const auto t = machine::project_time(c, m, prof);
  // Pure streaming: achieved bandwidth equals bw_fraction * peak.
  EXPECT_NEAR(t.achieved_bw_gbs(c), m.peak_bw_gbs * 0.5, 1e-6);
}

TEST(Roofline, ScaleCountersFollowsRules) {
  Counters c;
  c.bytes_read = 1000;
  c.bytes_written = 500;
  c.flops = 100;
  c.kernel_launches = 10;
  c.messages = 4;
  c.message_bytes = 400;
  c.solver_iterations = 20;
  const Counters s = machine::scale_counters(c, /*cells=*/4.0,
                                             /*iters=*/2.0, /*perimeter=*/2.0);
  EXPECT_EQ(s.bytes_read, 8000);    // cells x iters
  EXPECT_EQ(s.bytes_written, 4000);
  EXPECT_EQ(s.flops, 800);
  EXPECT_EQ(s.kernel_launches, 20);  // iters
  EXPECT_EQ(s.messages, 8);
  EXPECT_EQ(s.message_bytes, 1600);  // perimeter x iters
  EXPECT_EQ(s.solver_iterations, 40);
}

// --- metamorphic properties ---------------------------------------------------
//
// Relations that must hold for *any* calibration values: faster hardware
// cannot slow a projection down, bigger problems cannot get cheaper, and the
// KNL MCDRAM spill rule must be continuous at its capacity boundary.

/// A realistic TeaLeaf-like counter mix at mesh scale `n` (5-point stencil
/// traffic, one launch and one reduction per nominal iteration).
Counters kernel_mix(int n, int iterations = 100) {
  Counters c;
  const std::int64_t cells = static_cast<std::int64_t>(n) * n;
  c.bytes_read = 5 * 8 * cells * iterations;
  c.bytes_written = 8 * cells * iterations;
  c.flops = 10 * cells * iterations;
  c.kernel_launches = 4 * iterations;
  c.reductions = 2 * iterations;
  c.messages = 8 * iterations;
  c.message_bytes = 4 * 8 * n * iterations;
  return c;
}

TEST(RooflineMetamorphic, DoublingBandwidthNeverSlowsAnyVariant) {
  // For every supported (variant, machine) pair: doubling the machine's peak
  // bandwidth must not increase any projected kernel time.
  const Counters c = kernel_mix(512);
  for (const MachineModel* m : machine::paper_machines()) {
    for (const std::string& variant : machine::paper_variants()) {
      if (!machine::supported(variant, *m)) continue;
      MachineModel faster = *m;
      faster.peak_bw_gbs *= 2.0;
      const EfficiencyProfile prof = machine::efficiency_for(variant, *m);
      // With and without a spilling working set on the KNL.
      for (const std::int64_t ws : {std::int64_t{0}, std::int64_t(8) << 30,
                                    std::int64_t(64) << 30}) {
        const double before = machine::project_time(c, *m, prof, ws).total();
        const double after =
            machine::project_time(c, faster, prof, ws).total();
        EXPECT_LE(after, before * (1.0 + 1e-12))
            << variant << " on " << m->id << " ws=" << ws;
      }
    }
  }
}

TEST(RooflineMetamorphic, ProjectionsMonotoneInMeshSize) {
  // Scaling the counted work up (cells and iterations) must never cheapen
  // the projection, on any machine, for any supported variant.
  for (const MachineModel* m : machine::paper_machines()) {
    for (const std::string& variant : machine::paper_variants()) {
      if (!machine::supported(variant, *m)) continue;
      const EfficiencyProfile prof = machine::efficiency_for(variant, *m);
      double previous = 0.0;
      for (const int n : {64, 128, 256, 512, 1024, 2048, 4096}) {
        // CG iterations grow ~linearly with mesh width: model that too.
        const Counters c = kernel_mix(n, n);
        const std::int64_t ws = static_cast<std::int64_t>(n) * n * 6 * 8;
        const double t = machine::project_time(c, *m, prof, ws).total();
        EXPECT_GT(t, previous) << variant << " on " << m->id << " at " << n;
        previous = t;
      }
    }
  }
}

TEST(RooflineMetamorphic, KnlSpillBoundaryIsContinuousAndMonotone) {
  const EfficiencyProfile prof{.bw_fraction = 1.0};
  const Counters c = stream_counters(10'000'000'000LL);
  const auto& knl = machine::knl_7210();
  const auto capacity =
      static_cast<std::int64_t>(knl.mem_capacity_gb * 1e9);

  const double at_zero = machine::project_time(c, knl, prof, 0).total();
  const double below =
      machine::project_time(c, knl, prof, capacity - 1).total();
  const double at_capacity =
      machine::project_time(c, knl, prof, capacity).total();
  const double just_over =
      machine::project_time(c, knl, prof, capacity + 1).total();

  // In MCDRAM entirely: full-speed, identical to the no-working-set case.
  EXPECT_DOUBLE_EQ(below, at_zero);
  EXPECT_DOUBLE_EQ(at_capacity, at_zero);
  // One byte over: continuous (no cliff), but never faster.
  EXPECT_GE(just_over, at_capacity);
  EXPECT_NEAR(just_over, at_capacity, 1e-6 * at_capacity);

  // Far past capacity the effective bandwidth approaches DDR speed from
  // above: monotone degradation, bounded by the pure-DDR projection.
  double previous = at_capacity;
  for (const double factor : {2.0, 4.0, 16.0, 256.0}) {
    const auto ws = static_cast<std::int64_t>(factor * capacity);
    const double t = machine::project_time(c, knl, prof, ws).total();
    EXPECT_GE(t, previous) << "ws factor " << factor;
    previous = t;
  }
  // DDR bound: effective bandwidth can degrade towards ~80 GB/s, not below.
  const double ddr_floor_time =
      static_cast<double>(c.total_bytes()) / (80.0 * 1e9);
  EXPECT_LE(previous, ddr_floor_time * (1.0 + 1e-9));

  // Only the KNL has the spill rule.  The Xeon is working-set independent;
  // the P100's working-set dependence is the *occupancy* rule, which works
  // the other way around: larger sets saturate the device better and can
  // only speed the projection up.
  const auto& xeon = machine::xeon_e5_2660v4();
  EXPECT_DOUBLE_EQ(
      machine::project_time(c, xeon, prof, std::int64_t(256) << 30).total(),
      machine::project_time(c, xeon, prof, 0).total());
  const auto& p100 = machine::tesla_p100();
  EXPECT_LE(
      machine::project_time(c, p100, prof, std::int64_t(256) << 30).total(),
      machine::project_time(c, p100, prof, std::int64_t(64) << 20).total());
}

TEST(HostMachine, MeasuredModelIsSane) {
  const MachineModel& host = machine::host_machine();
  EXPECT_EQ(host.id, "host");
  EXPECT_GE(host.cores, 1);
  EXPECT_GT(host.peak_bw_gbs, 0.1);
}

TEST(HostMachine, OverridesFeedCalibrationIntoTheModel) {
  const machine::MachineOverrides saved = machine::host_overrides();
  machine::set_host_overrides({});
  const MachineModel measured = machine::host_machine();

  machine::MachineOverrides o;
  o.peak_bw_gbs = 42.5;
  o.launch_overhead_us = 7.25;
  machine::set_host_overrides(o);
  const MachineModel& calibrated = machine::host_machine();
  EXPECT_DOUBLE_EQ(calibrated.peak_bw_gbs, 42.5);
  EXPECT_DOUBLE_EQ(calibrated.launch_overhead_us, 7.25);
  // Untouched fields keep the measured values.
  EXPECT_EQ(calibrated.cores, measured.cores);
  EXPECT_DOUBLE_EQ(calibrated.msg_bw_gbs, measured.msg_bw_gbs);

  // Partial override: only the bandwidth moves.
  machine::MachineOverrides bw_only;
  bw_only.peak_bw_gbs = 99.0;
  machine::set_host_overrides(bw_only);
  EXPECT_DOUBLE_EQ(machine::host_machine().peak_bw_gbs, 99.0);
  EXPECT_DOUBLE_EQ(machine::host_machine().launch_overhead_us,
                   measured.launch_overhead_us);

  // Clearing restores the measured model exactly.
  machine::set_host_overrides({});
  EXPECT_DOUBLE_EQ(machine::host_machine().peak_bw_gbs, measured.peak_bw_gbs);
  machine::set_host_overrides(saved);
}

}  // namespace
