// Cross-backend equivalence: every registered variant must reproduce the
// serial reference's conserved-quantity summaries and iteration behaviour on
// the same deck — the property that makes the paper's performance comparison
// meaningful in the first place.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.hpp"
#include "core/registry.hpp"

namespace {

tl::ProblemConfig test_problem(int n, int steps, tl::SolverKind solver) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = n;
  cfg.problem().y_cells = n;
  cfg.problem().end_step = steps;
  cfg.problem().eps = 1e-12;
  cfg.problem().solver = solver;
  return cfg.problem();
}

tea::RunOptions fast_options() {
  tea::RunOptions o;
  o.threads = 4;
  o.ranks = 4;
  return o;
}

const tea::RunResult& reference_run() {
  static const tea::RunResult ref =
      tea::run_simulation("serial", test_problem(48, 2, tl::SolverKind::kCg),
                          fast_options());
  return ref;
}

class BackendEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendEquivalence, MatchesSerialSummary) {
  const auto& ref = reference_run();
  ASSERT_TRUE(ref.all_converged());
  const auto run = tea::run_simulation(
      GetParam(), test_problem(48, 2, tl::SolverKind::kCg), fast_options());
  EXPECT_TRUE(run.all_converged()) << GetParam();
  const auto close = [&](double a, double b) {
    EXPECT_NEAR(a, b, 1e-8 * std::max(1.0, std::fabs(b))) << GetParam();
  };
  close(run.final_summary.vol, ref.final_summary.vol);
  close(run.final_summary.mass, ref.final_summary.mass);
  close(run.final_summary.ie, ref.final_summary.ie);
  close(run.final_summary.temp, ref.final_summary.temp);
}

TEST_P(BackendEquivalence, EveryStepMatches) {
  const auto& ref = reference_run();
  const auto run = tea::run_simulation(
      GetParam(), test_problem(48, 2, tl::SolverKind::kCg), fast_options());
  ASSERT_EQ(run.steps.size(), ref.steps.size());
  for (std::size_t s = 0; s < run.steps.size(); ++s) {
    EXPECT_NEAR(run.steps[s].summary.temp, ref.steps[s].summary.temp,
                1e-8 * std::fabs(ref.steps[s].summary.temp))
        << GetParam() << " step " << s;
  }
}

TEST_P(BackendEquivalence, CountersPopulated) {
  const auto run = tea::run_simulation(
      GetParam(), test_problem(32, 1, tl::SolverKind::kCg), fast_options());
  EXPECT_GT(run.counters.total_bytes(), 0) << GetParam();
  EXPECT_GT(run.counters.flops, 0);
  EXPECT_GT(run.counters.kernel_launches, 0);
  EXPECT_GT(run.counters.reductions, 0);
  EXPECT_EQ(run.counters.solver_iterations, run.total_iterations);
  EXPECT_GT(run.working_set_bytes, 0);
  if (tea::backend_is_distributed(GetParam())) {
    EXPECT_GT(run.counters.messages, 0) << GetParam();
  }
  if (tea::backend_is_gpu(GetParam())) {
    // Fields are device-resident through the timed region; the observable
    // PCIe traffic is the reduction-result readbacks.
    EXPECT_GT(run.counters.d2h_bytes, 0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendEquivalence,
                         ::testing::ValuesIn(tea::available_backends()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- solver x representative-backend matrix ----------------------------------

class SolverBackendMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, tl::SolverKind>> {
};

TEST_P(SolverBackendMatrix, ConvergesAndMatchesSerial) {
  const auto& [backend, solver] = GetParam();
  const auto cfg = test_problem(32, 1, solver);
  const auto ref = tea::run_simulation("serial", cfg, fast_options());
  const auto run = tea::run_simulation(backend, cfg, fast_options());
  ASSERT_TRUE(ref.all_converged());
  EXPECT_TRUE(run.all_converged()) << backend;
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-7 * std::fabs(ref.final_summary.temp))
      << backend << " / " << tl::to_string(solver);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverBackendMatrix,
    ::testing::Combine(::testing::Values("manual-omp", "manual-mpi",
                                         "manual-cuda", "ops-tiled",
                                         "kokkos-omp", "raja-cuda"),
                       ::testing::Values(tl::SolverKind::kCg,
                                         tl::SolverKind::kJacobi,
                                         tl::SolverKind::kCheby,
                                         tl::SolverKind::kPpcg)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         tl::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- decomposition robustness ---------------------------------------------------

class RankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RankCountTest, MpiBackendAgreesForAnyRankCount) {
  const auto cfg = test_problem(37, 1, tl::SolverKind::kCg);  // odd mesh
  const auto ref = tea::run_simulation("serial", cfg, fast_options());
  tea::RunOptions o;
  o.ranks = GetParam();
  const auto run = tea::run_simulation("manual-mpi", cfg, o);
  EXPECT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp));
}

TEST_P(RankCountTest, OpsTiledAgreesForAnyRankCount) {
  const auto cfg = test_problem(37, 1, tl::SolverKind::kCg);
  const auto ref = tea::run_simulation("serial", cfg, fast_options());
  tea::RunOptions o;
  o.ranks = GetParam();
  o.tile.tile_rows = 5;
  const auto run = tea::run_simulation("ops-tiled", cfg, o);
  EXPECT_TRUE(run.all_converged());
  EXPECT_NEAR(run.final_summary.temp, ref.final_summary.temp,
              1e-8 * std::fabs(ref.final_summary.temp));
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCountTest, ::testing::Values(1, 2, 3, 5, 8));

// --- physics sanity ---------------------------------------------------------------

TEST(Physics, TotalTemperatureSumConserved) {
  // Neumann boundaries: the heat equation conserves the integral of u, so
  // `temp` (volume-weighted u) must match Σ u0 at every step.
  const auto cfg = test_problem(40, 3, tl::SolverKind::kCg);
  const auto run = tea::run_simulation("serial", cfg, fast_options());
  ASSERT_TRUE(run.all_converged());
  const double first = run.steps.front().summary.temp;
  for (const auto& step : run.steps) {
    EXPECT_NEAR(step.summary.temp, first, 1e-8 * std::fabs(first));
  }
}

TEST(Physics, MassAndVolumeConstant) {
  const auto cfg = test_problem(40, 3, tl::SolverKind::kCg);
  const auto run = tea::run_simulation("serial", cfg, fast_options());
  for (const auto& step : run.steps) {
    EXPECT_DOUBLE_EQ(step.summary.vol, run.steps.front().summary.vol);
    EXPECT_DOUBLE_EQ(step.summary.mass, run.steps.front().summary.mass);
  }
}

TEST(Physics, HeatFlowsFromHotToCold) {
  // The dense cold ambient material must warm near the hot strip: compare a
  // cell adjacent to the strip before and after stepping.
  tl::Config base = tl::Config::default_config();
  base.problem().x_cells = 32;
  base.problem().y_cells = 32;
  base.problem().end_step = 5;
  base.problem().eps = 1e-12;
  const auto run =
      tea::run_simulation("serial", base.problem(), fast_options());
  ASSERT_TRUE(run.all_converged());
  // Energy moved: internal energy stays positive everywhere and the overall
  // temperature distribution flattens over time, reflected by decreasing
  // max-min spread in step temps being impossible to see from summaries.
  // Spot-check: ie stays finite and positive.
  EXPECT_GT(run.final_summary.ie, 0.0);
}

TEST(Registry, UnknownBackendThrows) {
  EXPECT_THROW(tea::run_simulation("cray-vector",
                                   test_problem(8, 1, tl::SolverKind::kCg)),
               tl::Error);
}

TEST(Registry, BackendListConsistent) {
  const auto all = tea::available_backends();
  EXPECT_EQ(all.size(), 18u);
  int gpu = 0, dist = 0;
  for (const auto& id : all) {
    gpu += tea::backend_is_gpu(id);
    dist += tea::backend_is_distributed(id);
  }
  EXPECT_EQ(gpu, 6);
  EXPECT_EQ(dist, 5);
}

}  // namespace
